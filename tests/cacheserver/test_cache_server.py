"""The shared cache tier end to end: server, RemoteCache, tiering.

Covers the acceptance scenarios for the network tier: two clients
sharing one warm corpus with zero duplicate oracle evaluations,
read-through fallback while the server is down, and a mixed-format
(``.rpc`` + ``.json``) corpus served remotely byte-identically to
local reads.
"""

import socket
import threading

import pytest

from repro.cacheserver import protocol
from repro.cacheserver.server import CacheServerConfig, CacheServerThread
from repro.costs.report import frame_length, pack_frame
from repro.explore import (
    DiskCache,
    ExhaustiveSweep,
    ExplorationResult,
    Explorer,
    MemoryCache,
    RemoteCache,
    TieredCache,
)


@pytest.fixture()
def server():
    with CacheServerThread(CacheServerConfig(host="127.0.0.1", port=0)) as srv:
        yield srv


def make_client(server, **kwargs):
    host, port = server.address
    return RemoteCache(host, port, **kwargs)


# ----------------------------------------------------------------------
# Basic protocol traffic
# ----------------------------------------------------------------------
class TestRoundTrips:
    def test_put_get_len_clear(self, server):
        with make_client(server) as client:
            client.put("k1", {"x": 1})
            client.put("k2", {"__infeasible__": "nope"})
            assert client.flush(timeout=10)
            assert len(client) == 2
            assert client.get("k1") == {"x": 1}
            assert client.get("k2") == {"__infeasible__": "nope"}
            assert client.get("absent") is None
            client.clear()
            assert len(client) == 0

    def test_read_your_writes_before_flush(self, server):
        with make_client(server) as client:
            client.put("pending", {"v": 7})
            # The entry may still be in the write-behind queue, yet the
            # probe must see it.
            assert client.get("pending") == {"v": 7}

    def test_lookup_many_batches(self, server):
        with make_client(server) as client:
            payloads = {f"k{i}": {"i": i} for i in range(50)}
            client.store_many(payloads)
            assert client.flush(timeout=10)
            found = client.lookup_many(list(payloads) + ["missing"])
            assert found == payloads

    def test_server_stats_counters(self, server):
        with make_client(server) as client:
            client.put("k", {"v": 1})
            assert client.flush(timeout=10)
            client.get("k")
            stats = client.server_stats()
            assert stats["server"] == "repro.cacheserver"
            assert stats["entries"] == 1
            assert stats["keys_stored"] == 1
            assert stats["keys_served"] >= 1

    def test_synchronous_stores(self, server):
        with make_client(server, write_behind=False) as client:
            client.put("k", {"v": 2})
            assert len(client) == 1  # no flush needed

    def test_client_stats_hits_and_misses(self, server):
        with make_client(server) as client:
            client.put("k", {"v": 1})
            assert client.flush(timeout=10)
            client.get("k")
            client.get("absent")
            assert client.stats.hits == 1
            assert client.stats.misses == 1
            assert client.stats.stores == 1


# ----------------------------------------------------------------------
# Handshake discipline (raw socket, no client sugar)
# ----------------------------------------------------------------------
class TestHandshake:
    @staticmethod
    def _exchange(address, body):
        with socket.create_connection(address, timeout=10) as sock:
            sock.sendall(pack_frame(body))
            header = b""
            while len(header) < 4:
                chunk = sock.recv(4 - len(header))
                assert chunk, "server closed before responding"
                header += chunk
            length = frame_length(header)
            payload = b""
            while len(payload) < length:
                chunk = sock.recv(length - len(payload))
                assert chunk
                payload += chunk
            return payload

    def test_first_frame_must_be_hello(self, server):
        response = self._exchange(server.address, protocol.get_request(["k"]))
        with pytest.raises(protocol.RemoteError, match="HELLO"):
            protocol.parse_response(response)

    def test_version_mismatch_rejected(self, server):
        bad_hello = (
            bytes([protocol.OP_HELLO])
            + protocol.HELLO_MAGIC
            + bytes([protocol.CACHE_PROTOCOL_VERSION + 1])
        )
        response = self._exchange(server.address, bad_hello)
        with pytest.raises(protocol.RemoteError, match="version"):
            protocol.parse_response(response)

    def test_hello_reports_server_info(self, server):
        response = self._exchange(server.address, protocol.hello_request())
        info = protocol.parse_payload_response(response)
        assert info["server"] == "repro.cacheserver"
        assert info["protocol"] == protocol.CACHE_PROTOCOL_VERSION


# ----------------------------------------------------------------------
# Two clients, one warm corpus: the tier's whole point
# ----------------------------------------------------------------------
class TestSharedCorpus:
    def test_second_client_sweeps_with_zero_oracle_evals(self, server):
        first = Explorer.for_app("cavity", cache=server.url, on_error="skip")
        cold = first.run(ExhaustiveSweep())
        assert first.cache.misses > 0  # the cold sweep did real work
        assert first.cache.flush(timeout=30)
        first.cache.close_backend()

        second = Explorer.for_app("cavity", cache=server.url, on_error="skip")
        warm = second.run(ExhaustiveSweep())
        assert second.cache.misses == 0  # zero duplicate oracle evals
        assert len(warm.records) == len(cold.records)
        assert {r.fingerprint for r in warm.records} == {
            r.fingerprint for r in cold.records
        }
        second.cache.close_backend()

    def test_concurrent_clients_stay_consistent(self, server):
        payloads = {f"fp{i}": {"i": i, "deep": {"v": [i, i + 1]}} for i in range(40)}
        errors = []

        def hammer(offset):
            try:
                with make_client(server) as client:
                    for i in range(offset, 40, 2):
                        key = f"fp{i}"
                        client.put(key, payloads[key])
                    assert client.flush(timeout=30)
                    for _ in range(5):
                        found = client.lookup_many(sorted(payloads))
                        for key, payload in found.items():
                            assert payload == payloads[key]
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(o,)) for o in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        with make_client(server) as checker:
            assert checker.lookup_many(sorted(payloads)) == payloads

    def test_sharded_sweeps_merge_to_full_result(self, server):
        pilot = Explorer.for_app("cavity", cache=server.url, on_error="skip")
        points = pilot.space.points()
        shards = [pilot.shard_points(3, i) for i in range(3)]
        assert sum(len(s) for s in shards) == len(points)
        assert len({p.display_label for s in shards for p in s}) == len(points)

        partials = []
        for shard in shards:
            worker = Explorer.for_app("cavity", cache=server.url, on_error="skip")
            records = worker.evaluate_many(shard)
            partials.append(
                ExplorationResult(
                    space_name=worker.space.name,
                    strategy="shard",
                    records=records,
                )
            )
            assert worker.cache.flush(timeout=30)
            worker.cache.close_backend()
        merged = ExplorationResult.merged(partials)

        reference = pilot.run(ExhaustiveSweep())
        assert pilot.cache.misses == 0  # shard workers fed the corpus
        assert {r.fingerprint for r in merged.records} == {
            r.fingerprint for r in reference.records
        }
        pilot.cache.close_backend()


# ----------------------------------------------------------------------
# Outage behavior: read-through fallback, recovery
class _GatedBackend(MemoryCache):
    """Server backend whose store_many blocks until ``gate`` opens.

    Holds a client batch in its in-flight window deterministically:
    ``entered`` fires once the server is sitting on the batch.
    """

    def __init__(self) -> None:
        super().__init__()
        self.entered = threading.Event()
        self.gate = threading.Event()

    def store_many(self, payloads):
        self.entered.set()
        if not self.gate.wait(10):
            raise RuntimeError("gate never opened")
        return super().store_many(payloads)


# ----------------------------------------------------------------------
class TestFallback:
    def test_reads_fall_through_when_server_down(self, tmp_path):
        local = DiskCache(tmp_path / "fallback")
        local.put("warm", {"v": 42})
        # Port 1 refuses connections; the client must serve from disk.
        client = RemoteCache(
            "127.0.0.1", 1, fallback=local, retry_seconds=0.05
        )
        assert client.get("warm") == {"v": 42}
        assert client.get("absent") is None
        client.close(timeout=1.0)

    def test_stores_land_on_fallback_when_server_down(self, tmp_path):
        local = DiskCache(tmp_path / "fallback")
        client = RemoteCache(
            "127.0.0.1", 1, fallback=local, retry_seconds=0.05
        )
        client.put("k", {"v": 3})
        assert client.flush(timeout=10)  # absorbed by the fallback
        assert local.get("k") == {"v": 3}
        assert len(client) == 1
        client.close(timeout=1.0)

    def test_no_fallback_flush_reports_failure(self):
        client = RemoteCache("127.0.0.1", 1, retry_seconds=0.05)
        client.put("k", {"v": 4})
        assert client.flush(timeout=0.5) is False
        assert client.get("k") == {"v": 4}  # still pending, still readable
        client.close(timeout=0.2)

    def test_resolve_remote_url_with_fallback_dir(self, tmp_path):
        from repro.explore import resolve_backend

        root = tmp_path / "fb"
        backend = resolve_backend(f"remote://127.0.0.1:1{root}")
        assert isinstance(backend, RemoteCache)
        assert isinstance(backend.fallback, DiskCache)
        assert backend.fallback.root == root
        backend.close(timeout=1.0)

    def test_flush_waits_for_inflight_batch(self):
        """A batch the flusher has taken but not delivered is not drained.

        flush() must not report True while the background flusher holds
        an undelivered batch, and the batch's keys must stay readable
        for the whole in-flight window (read-your-writes).
        """
        backend = _GatedBackend()
        with CacheServerThread(
            CacheServerConfig(host="127.0.0.1", port=0), backend=backend
        ) as srv:
            client = make_client(srv)
            try:
                client.put("k", {"v": 1})
                # The server's store_many is now holding the batch the
                # flusher sent: the entry is neither pending nor stored.
                assert backend.entered.wait(10)
                assert client.flush(timeout=0.3) is False
                assert client.get("k") == {"v": 1}
                backend.gate.set()
                assert client.flush(timeout=10) is True
                assert backend.get("k") == {"v": 1}
            finally:
                backend.gate.set()
                client.close(timeout=5.0)

    def test_oversized_entry_does_not_poison_queue(self, server, monkeypatch):
        """A batch over the frame bound is split, not retried forever.

        A single entry that cannot fit in one frame is dropped (counted
        as an eviction) instead of being requeued as a poison batch;
        the entries around it still land.
        """
        import repro.costs.report as report

        monkeypatch.setattr(report, "FRAME_MAX_BYTES", 4096)
        with make_client(server) as client:
            client.put("small", {"v": 1})
            client.put("big", {"blob": "x" * 8192})
            client.put("small2", {"v": 2})
            assert client.flush(timeout=10) is True
            assert client.get("small") == {"v": 1}
            assert client.get("small2") == {"v": 2}
            assert client.stats.evictions >= 1

    def test_queue_survives_outage_until_server_returns(self, tmp_path):
        config = CacheServerConfig(
            host="127.0.0.1", port=0, cache_dir=tmp_path / "corpus"
        )
        with CacheServerThread(config) as first:
            host, port = first.address
        # Server is now down; writes queue client-side.
        client = RemoteCache(host, port, retry_seconds=0.05)
        client.put("k", {"v": 5})
        assert client.flush(timeout=1) is False
        # Same corpus, new incarnation on the same port: the retry
        # drains the queue into it.
        with CacheServerThread(
            CacheServerConfig(host=host, port=port, cache_dir=tmp_path / "corpus")
        ):
            assert client.flush(timeout=10)
            assert client.get("k") == {"v": 5}
        client.close(timeout=1.0)


# ----------------------------------------------------------------------
# Mixed-format corpus over the wire
# ----------------------------------------------------------------------
class TestMixedFormatCorpus:
    def test_remote_reads_match_local_reads(self, tmp_path):
        root = tmp_path / "corpus"
        compact_writer = DiskCache(root, format="compact")
        json_writer = DiskCache(root, format="json")
        expected = {}
        for i in range(6):
            payload = {"i": i, "nested": {"vals": [i, i * 2.5]}}
            writer = compact_writer if i % 2 == 0 else json_writer
            writer.put(f"key{i}", payload)
            expected[f"key{i}"] = payload

        config = CacheServerConfig(host="127.0.0.1", port=0, cache_dir=root)
        with CacheServerThread(config) as srv:
            with make_client(srv) as client:
                remote_view = client.lookup_many(sorted(expected))
        local_view = DiskCache(root).lookup_many(sorted(expected))
        assert remote_view == local_view == expected


# ----------------------------------------------------------------------
# Tier composition
# ----------------------------------------------------------------------
class TestTieredCache:
    def test_promotion_and_write_through(self, server):
        front = MemoryCache(max_entries=8)
        remote = make_client(server)
        tiered = TieredCache((front, remote))
        assert tiered.max_entries == 8

        tiered.put("k", {"v": 1})
        assert remote.flush(timeout=10)
        assert front.get("k") == {"v": 1}  # write-through hit the front

        front.clear()
        assert tiered.get("k") == {"v": 1}  # served by the remote tier
        assert front.get("k") == {"v": 1}  # ... and promoted forward
        tiered.close()

    def test_front_tier_absorbs_repeat_probes(self, server):
        remote = make_client(server)
        tiered = TieredCache((MemoryCache(max_entries=8), remote))
        tiered.put("k", {"v": 2})
        assert remote.flush(timeout=10)
        before = remote.stats.hits + remote.stats.misses
        for _ in range(5):
            assert tiered.get("k") == {"v": 2}
        assert remote.stats.hits + remote.stats.misses == before
        tiered.close()

    def test_empty_tiers_rejected(self):
        with pytest.raises(ValueError):
            TieredCache(())

"""``python -m repro.cacheserver`` end to end: boot, serve, SIGTERM drain.

This is the test CI's ``cacheserver`` job runs: a real subprocess
server on an ephemeral port, a client warm/read cycle, and a
clean-drain assertion on the exit status.
"""

import os
import re
import signal
import subprocess
import sys
from pathlib import Path

from repro.explore import DiskCache, RemoteCache

SRC = Path(__file__).resolve().parents[2] / "src"


def test_cli_serves_and_drains_on_sigterm(tmp_path):
    corpus = tmp_path / "corpus"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cacheserver",
            "--port",
            "0",
            "--cache",
            str(corpus),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"serving on ([\d.]+):(\d+)", banner)
        assert match, f"no serving banner in {banner!r}"
        host, port = match.group(1), int(match.group(2))

        with RemoteCache(host, port) as client:
            client.put("smoke", {"v": 1})
            assert client.flush(timeout=30)
            assert client.get("smoke") == {"v": 1}
            assert len(client) == 1
            stats = client.server_stats()
            assert stats["backend"] == "DiskCache"

        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)

    assert proc.returncode == 0, output
    assert "stop requested, draining" in output
    assert "drained cleanly" in output
    # The corpus the CLI served is an ordinary DiskCache directory.
    assert DiskCache(corpus).get("smoke") == {"v": 1}

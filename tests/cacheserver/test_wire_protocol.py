"""The cache-tier wire protocol: framing, opcodes, batch codecs."""

import pytest

from repro.cacheserver import protocol
from repro.costs.report import (
    FRAME_MAX_BYTES,
    CompactDecodeError,
    FrameError,
    frame_length,
    pack_frame,
    pack_wire_keys,
    pack_wire_records,
    unpack_wire_keys,
    unpack_wire_records,
)


# ----------------------------------------------------------------------
# Frame layer (costs.report)
# ----------------------------------------------------------------------
class TestFraming:
    def test_round_trip(self):
        framed = pack_frame(b"hello")
        assert frame_length(framed[:4]) == 5
        assert framed[4:] == b"hello"

    def test_empty_body(self):
        framed = pack_frame(b"")
        assert frame_length(framed[:4]) == 0
        assert framed == b"\x00\x00\x00\x00"

    def test_oversized_body_rejected(self):
        class FakeBytes(bytes):
            def __len__(self):
                return FRAME_MAX_BYTES + 1

        with pytest.raises(FrameError):
            pack_frame(FakeBytes())

    def test_oversized_header_rejected(self):
        header = (FRAME_MAX_BYTES + 1).to_bytes(4, "little")
        with pytest.raises(FrameError):
            frame_length(header)

    def test_short_header_rejected(self):
        with pytest.raises(FrameError):
            frame_length(b"\x00\x00")


# ----------------------------------------------------------------------
# Batch codecs (costs.report)
# ----------------------------------------------------------------------
class TestWireBatches:
    def test_keys_round_trip(self):
        keys = ["abc", "", "fingerprint-é"]
        assert unpack_wire_keys(pack_wire_keys(keys)) == keys

    def test_keys_trailing_bytes_rejected(self):
        with pytest.raises(CompactDecodeError):
            unpack_wire_keys(pack_wire_keys(["a"]) + b"x")

    def test_keys_truncation_rejected(self):
        blob = pack_wire_keys(["abcdef"])
        with pytest.raises(CompactDecodeError):
            unpack_wire_keys(blob[:-2])

    def test_records_round_trip(self):
        payloads = {
            "k1": {"x": 1, "nested": {"y": [1, 2.5, "z"]}},
            "k2": {"__infeasible__": "no allocation"},
        }
        assert unpack_wire_records(pack_wire_records(payloads)) == payloads

    def test_records_empty(self):
        assert unpack_wire_records(pack_wire_records({})) == {}


# ----------------------------------------------------------------------
# Opcode layer
# ----------------------------------------------------------------------
class TestRequests:
    def test_hello_round_trip(self):
        opcode, operand = protocol.parse_request(protocol.hello_request())
        assert opcode == protocol.OP_HELLO
        assert protocol.parse_hello(operand) == protocol.CACHE_PROTOCOL_VERSION

    def test_hello_bad_magic(self):
        with pytest.raises(protocol.WireProtocolError):
            protocol.parse_hello(b"XXXX\x01")

    def test_hello_version_mismatch(self):
        bad = protocol.HELLO_MAGIC + bytes([protocol.CACHE_PROTOCOL_VERSION + 1])
        with pytest.raises(protocol.WireProtocolError, match="version"):
            protocol.parse_hello(bad)

    def test_get_round_trip(self):
        opcode, operand = protocol.parse_request(protocol.get_request(["a", "b"]))
        assert opcode == protocol.OP_GET
        assert protocol.parse_get(operand) == ["a", "b"]

    def test_put_round_trip(self):
        payloads = {"k": {"v": 1}}
        opcode, operand = protocol.parse_request(protocol.put_request(payloads))
        assert opcode == protocol.OP_PUT
        assert protocol.parse_put(operand) == payloads

    def test_empty_request_rejected(self):
        with pytest.raises(protocol.WireProtocolError):
            protocol.parse_request(b"")

    def test_malformed_operand_wrapped(self):
        with pytest.raises(protocol.WireProtocolError):
            protocol.parse_get(b"\xff\xff")


class TestResponses:
    def test_ok_records(self):
        payloads = {"k": {"v": [1, 2]}}
        assert (
            protocol.parse_records_response(protocol.ok_records(payloads))
            == payloads
        )

    def test_ok_count(self):
        assert protocol.parse_count_response(protocol.ok_count(12345)) == 12345

    def test_ok_payload(self):
        payload = {"server": "x", "entries": 3}
        assert (
            protocol.parse_payload_response(protocol.ok_payload(payload))
            == payload
        )

    def test_error_raises_remote_error(self):
        with pytest.raises(protocol.RemoteError, match="boom"):
            protocol.parse_response(protocol.error_response("boom"))

    def test_empty_response_rejected(self):
        with pytest.raises(protocol.WireProtocolError):
            protocol.parse_response(b"")

    def test_unknown_status_rejected(self):
        with pytest.raises(protocol.WireProtocolError):
            protocol.parse_response(b"\x07")

    def test_malformed_count_rejected(self):
        with pytest.raises(protocol.WireProtocolError):
            protocol.parse_count_response(protocol.ok_response(b"\x01\x02"))

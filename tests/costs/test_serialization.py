"""JSON round-trips for cost reports and exploration records."""

import json

import pytest

from repro.api import CostReport, DesignPoint, ExplorationRecord, MemoryCost
from repro.memlib import MemoryKind


def _memory(name="sram0", kind=MemoryKind.ONCHIP):
    return MemoryCost(
        name=name,
        kind=kind,
        words=2048,
        width=16,
        ports=2,
        area_mm2=1.25,
        power_mw=3.5,
        groups=("pyr", "ridge"),
        access_rate_hz=1.5e6,
    )


def test_memory_cost_round_trip():
    memory = _memory()
    data = memory.to_dict()
    json.dumps(data)  # must be JSON-serializable as-is
    assert MemoryCost.from_dict(data) == memory


def test_memory_cost_kind_survives():
    offchip = _memory("dram0", MemoryKind.OFFCHIP)
    restored = MemoryCost.from_dict(offchip.to_dict())
    assert restored.kind is MemoryKind.OFFCHIP


def test_cost_report_round_trip():
    report = CostReport(
        label="merged",
        memories=(_memory(), _memory("dram0", MemoryKind.OFFCHIP)),
        cycles_used=123456.0,
        cycle_budget=200000.0,
        notes="designer note",
    )
    restored = CostReport.from_dict(report.to_dict())
    assert restored == report
    assert restored.onchip_area_mm2 == report.onchip_area_mm2
    assert restored.offchip_power_mw == report.offchip_power_mw


def test_cost_report_round_trip_empty_memories():
    report = CostReport(label="empty")
    restored = CostReport.from_dict(report.to_dict())
    assert restored == report
    assert restored.memories == ()
    assert restored.total_power_mw == 0.0


def test_cost_report_non_ascii_label():
    report = CostReport(label="π-mémoire ✓ 設計", notes="コメント")
    text = json.dumps(report.to_dict(), ensure_ascii=False)
    restored = CostReport.from_dict(json.loads(text))
    assert restored.label == "π-mémoire ✓ 設計"
    assert restored == report


def test_exploration_record_round_trip():
    record = ExplorationRecord(
        point=DesignPoint(
            variant="merged", budget_fraction=0.85, n_onchip=8, label="8 memories"
        ),
        report=CostReport(label="8 memories", memories=(_memory(),)),
        fingerprint="f" * 64,
        seconds=1.25,
        cache_hit=True,
        step="Memory allocation",
        program_name="btpc",
    )
    restored = ExplorationRecord.from_dict(record.to_dict())
    assert restored == record
    assert restored.point.n_onchip == 8
    assert restored.label == "8 memories"


def test_from_dict_rejects_missing_required_keys():
    with pytest.raises(KeyError):
        CostReport.from_dict({})
    with pytest.raises(KeyError):
        MemoryCost.from_dict({"name": "x"})

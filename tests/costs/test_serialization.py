"""JSON round-trips for cost reports and exploration records, plus the
compact payload codec the DiskCache persists reports with."""

import json

import pytest

from repro.api import CostReport, DesignPoint, ExplorationRecord, MemoryCost
from repro.costs.report import (
    COMPACT_MAGIC,
    COMPACT_VERSION,
    INFEASIBLE_MARKER,
    CompactDecodeError,
    is_compact_payload,
    pack_payload,
    unpack_payload,
)
from repro.memlib import MemoryKind


def _memory(name="sram0", kind=MemoryKind.ONCHIP):
    return MemoryCost(
        name=name,
        kind=kind,
        words=2048,
        width=16,
        ports=2,
        area_mm2=1.25,
        power_mw=3.5,
        groups=("pyr", "ridge"),
        access_rate_hz=1.5e6,
    )


def test_memory_cost_round_trip():
    memory = _memory()
    data = memory.to_dict()
    json.dumps(data)  # must be JSON-serializable as-is
    assert MemoryCost.from_dict(data) == memory


def test_memory_cost_kind_survives():
    offchip = _memory("dram0", MemoryKind.OFFCHIP)
    restored = MemoryCost.from_dict(offchip.to_dict())
    assert restored.kind is MemoryKind.OFFCHIP


def test_cost_report_round_trip():
    report = CostReport(
        label="merged",
        memories=(_memory(), _memory("dram0", MemoryKind.OFFCHIP)),
        cycles_used=123456.0,
        cycle_budget=200000.0,
        notes="designer note",
    )
    restored = CostReport.from_dict(report.to_dict())
    assert restored == report
    assert restored.onchip_area_mm2 == report.onchip_area_mm2
    assert restored.offchip_power_mw == report.offchip_power_mw


def test_cost_report_round_trip_empty_memories():
    report = CostReport(label="empty")
    restored = CostReport.from_dict(report.to_dict())
    assert restored == report
    assert restored.memories == ()
    assert restored.total_power_mw == 0.0


def test_cost_report_non_ascii_label():
    report = CostReport(label="π-mémoire ✓ 設計", notes="コメント")
    text = json.dumps(report.to_dict(), ensure_ascii=False)
    restored = CostReport.from_dict(json.loads(text))
    assert restored.label == "π-mémoire ✓ 設計"
    assert restored == report


def test_exploration_record_round_trip():
    record = ExplorationRecord(
        point=DesignPoint(
            variant="merged", budget_fraction=0.85, n_onchip=8, label="8 memories"
        ),
        report=CostReport(label="8 memories", memories=(_memory(),)),
        fingerprint="f" * 64,
        seconds=1.25,
        cache_hit=True,
        step="Memory allocation",
        program_name="btpc",
    )
    restored = ExplorationRecord.from_dict(record.to_dict())
    assert restored == record
    assert restored.point.n_onchip == 8
    assert restored.label == "8 memories"


def test_from_dict_rejects_missing_required_keys():
    with pytest.raises(KeyError):
        CostReport.from_dict({})
    with pytest.raises(KeyError):
        MemoryCost.from_dict({"name": "x"})


# ----------------------------------------------------------------------
# Compact payload codec
# ----------------------------------------------------------------------
def test_compact_report_payload_round_trip():
    report = CostReport(
        label="π-mémoire ✓ 設計",
        memories=(_memory(), _memory("dram0", MemoryKind.OFFCHIP)),
        cycles_used=123456.0,
        cycle_budget=200000.0,
        notes="コメント",
    )
    payload = report.to_dict()
    data = pack_payload(payload)
    assert is_compact_payload(data)
    assert data.startswith(COMPACT_MAGIC)
    restored = unpack_payload(data)
    assert restored == payload
    assert CostReport.from_dict(restored) == report


def test_compact_report_payload_is_struct_packed_not_json():
    payload = CostReport(label="x", memories=(_memory(),)).to_dict()
    data = pack_payload(payload)
    # A typed report record, not an embedded-JSON fallback.
    assert b'"memories"' not in data


def test_compact_empty_report_round_trip():
    payload = CostReport(label="").to_dict()
    assert unpack_payload(pack_payload(payload)) == payload


def test_compact_integer_fields_decode_equal():
    """to_dict payloads built from int-valued fields decode == equal
    (from_dict coerces through float() either way)."""
    payload = CostReport(label="n", cycles_used=300, cycle_budget=500).to_dict()
    restored = unpack_payload(pack_payload(payload))
    assert restored == payload
    assert isinstance(restored["cycles_used"], float)


def test_compact_failure_payload_round_trip():
    payload = {INFEASIBLE_MARKER: "MacpError: 12 memories infeasible"}
    data = pack_payload(payload)
    assert is_compact_payload(data)
    assert unpack_payload(data) == payload


def test_compact_generic_payload_round_trip():
    payload = {"value": 1, "nested": {"π": [1, 2.5, None, True]}}
    data = pack_payload(payload)
    assert is_compact_payload(data)
    assert unpack_payload(data) == payload


def test_compact_near_report_payload_falls_back_to_generic():
    """A payload that *almost* looks like a report (extra key, wrong
    type) still round-trips via the embedded-JSON record."""
    report_like = CostReport(label="x").to_dict()
    report_like["extra"] = 1
    assert unpack_payload(pack_payload(report_like)) == report_like
    wrong_type = CostReport(label="x").to_dict()
    wrong_type["cycles_used"] = "many"
    assert unpack_payload(pack_payload(wrong_type)) == wrong_type


def test_compact_out_of_range_field_falls_back_to_generic():
    payload = CostReport(
        label="big", memories=(_memory(),)
    ).to_dict()
    payload["memories"][0]["words"] = 2**70  # exceeds the int64 slot
    assert unpack_payload(pack_payload(payload)) == payload


def test_unpack_rejects_bad_magic_and_version():
    with pytest.raises(CompactDecodeError):
        unpack_payload(b'{"value": 1}')
    data = pack_payload({"value": 1})
    bumped = COMPACT_MAGIC + bytes([COMPACT_VERSION + 1]) + data[5:]
    with pytest.raises(CompactDecodeError):
        unpack_payload(bumped)
    with pytest.raises(CompactDecodeError):
        unpack_payload(b"")


def test_unpack_rejects_truncated_records():
    data = pack_payload(CostReport(label="whole", memories=(_memory(),)).to_dict())
    for cut in (5, 6, len(data) // 2, len(data) - 1):
        with pytest.raises(CompactDecodeError):
            unpack_payload(data[:cut])
    with pytest.raises(CompactDecodeError):
        unpack_payload(data + b"\x00")  # trailing garbage

"""Memory technology models: monotonicity and selection properties."""

import pytest
from hypothesis import given, strategies as st

from repro.memlib import (
    EDO_DRAM_PARTS,
    MemoryKind,
    MemoryLibrary,
    OffChipLibrary,
    OnChipGenerator,
    RegisterFileTechnology,
    default_library,
)
from repro.ir import BasicGroup

WORDS = st.integers(8, 262144)
WIDTH = st.integers(1, 64)


@given(WORDS, WIDTH)
def test_onchip_area_monotone_in_ports(words, width):
    generator = OnChipGenerator()
    single = generator.generate(words, width, 1)
    double = generator.generate(words, width, 2)
    assert double.area_mm2 > single.area_mm2
    assert double.read_energy_nj > single.read_energy_nj


@given(st.integers(8, 131072), WIDTH)
def test_onchip_energy_sublinear_in_words(words, width):
    """Doubling words must less-than-double the energy (paper §4.6)."""
    generator = OnChipGenerator()
    small = generator.generate(words, width, 1)
    large = generator.generate(words * 2, width, 1)
    assert small.read_energy_nj < large.read_energy_nj
    assert large.read_energy_nj < 2 * small.read_energy_nj


@given(WORDS, st.integers(1, 32))
def test_onchip_area_monotone_in_width(words, width):
    generator = OnChipGenerator()
    narrow = generator.generate(words, width, 1)
    wide = generator.generate(words, width * 2, 1)
    assert wide.area_mm2 > narrow.area_mm2


def test_onchip_rejects_oversize():
    generator = OnChipGenerator()
    with pytest.raises(ValueError):
        generator.generate(10_000_000, 8, 1)
    assert not generator.supports(10_000_000, 8)


def test_module_power_accounting():
    module = OnChipGenerator().generate(512, 16, 1)
    idle = module.total_power_mw(0, 0)
    busy = module.total_power_mw(1e6, 1e6)
    assert idle == pytest.approx(module.static_mw)
    assert busy > idle
    with pytest.raises(ValueError):
        module.dynamic_power_mw(-1, 0)


def test_register_file_model():
    module = RegisterFileTechnology().module(12, 8)
    assert module.kind is MemoryKind.ONCHIP
    assert module.area_mm2 < 2.0  # a handful of flip-flops, not a macro
    assert module.ports == 2


def test_offchip_selects_width_compatible_part():
    library = OffChipLibrary()
    config = library.select(1 << 20, 10)
    assert config.part.width >= 10


def test_offchip_depth_banking():
    library = OffChipLibrary()
    config = library.select(3 << 20, 8)
    assert config.banks * config.part.words >= 3 << 20


def test_offchip_rejects_impossible_width():
    with pytest.raises(ValueError):
        OffChipLibrary().select(1024, 128)


@given(st.floats(0, 25e6), st.floats(0, 25e6))
def test_offchip_power_monotone_in_rate(rate_a, rate_b):
    config = OffChipLibrary().select(1 << 20, 8)
    low, high = sorted((rate_a, rate_b))
    assert config.power_mw(low) <= config.power_mw(high) + 1e-9


def test_offchip_power_bounded_by_active():
    part = EDO_DRAM_PARTS[0]
    config = OffChipLibrary().select(part.words, part.width)
    assert config.power_mw(1e12) <= config.part.active_mw * config.banks + 1e-9


def test_library_split_policy():
    library = default_library()
    big = BasicGroup("big", 1 << 20, 8)
    small = BasicGroup("small", 512, 20)
    onchip, offchip = library.split([big, small])
    assert [g.name for g in offchip] == ["big"]
    assert [g.name for g in onchip] == ["small"]


def test_library_threshold_is_configurable():
    library = MemoryLibrary(offchip_word_threshold=256)
    group = BasicGroup("g", 512, 8)
    assert library.is_offchip(group)

"""SCBD: flow graphs, balancing, conflict graphs, budget distribution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dtse import analyze_macp, body_critical_path
from repro.dtse.scbd import (
    BodyFlowGraph,
    ConflictGraph,
    InfeasibleBudget,
    balance,
    distribute,
)
from repro.dtse.scbd.conflict import max_cofire
from repro.ir import ProgramBuilder


def _chain_program(chain_length=4, trips=100):
    builder = ProgramBuilder("chain")
    for index in range(chain_length):
        builder.array(f"g{index}", (64,), 8)
    nest = builder.nest("body", ("i",), (trips,))
    previous = None
    for index in range(chain_length):
        label = nest.read(f"g{index}", after=[previous] if previous else [])
        previous = label
    return builder.build()


def test_flowgraph_macp_matches_site_analysis(btpc_program):
    for nest in btpc_program.nests:
        assert BodyFlowGraph(nest).macp == body_critical_path(nest)


def test_multiplicity_expansion_chains():
    builder = ProgramBuilder("walk")
    builder.array("t", (64,), 8)
    nest = builder.nest("body", ("i",), (10,))
    nest.read("t", mult=3.5, label="walk")
    graph = BodyFlowGraph(builder.build().nest("body"))
    assert graph.sequential_length == 4  # ceil(3.5) chained occurrences
    assert graph.macp == 4
    total = sum(occ.expected for occ in graph.occurrences)
    assert total == pytest.approx(3.5)


def test_foreground_accesses_cost_no_cycles():
    builder = ProgramBuilder("fg")
    builder.array("mem", (64,), 8)
    builder.array("regs", (12,), 8)
    nest = builder.nest("body", ("i",), (10,))
    a = nest.read("mem", label="a")
    b = nest.read("regs", label="b", foreground=True, after=[a])
    nest.write("mem", label="c", after=[b])
    program = builder.build()
    graph = BodyFlowGraph(program.nest("body"))
    assert graph.sequential_length == 2  # the register read vanished
    # ... but the dependence a -> c survived through the bridge.
    assert graph.macp == 2
    schedule = balance(graph, 2)
    assert schedule.assignment["a"] < schedule.assignment["c"]


def test_balance_respects_budget_and_dependences():
    program = _chain_program(5)
    graph = BodyFlowGraph(program.nest("body"))
    with pytest.raises(InfeasibleBudget):
        balance(graph, 4)
    schedule = balance(graph, 5)
    schedule.verify()
    assert schedule.cost() == 0.0  # a pure chain needs no parallelism


@given(st.integers(0, 10_000))
@settings(deadline=None, max_examples=25)
def test_balance_random_dags_are_legal(seed):
    """Random DAG bodies always get legal schedules at any budget >= MACP."""
    import random

    rng = random.Random(seed)
    builder = ProgramBuilder("rand")
    groups = [f"g{k}" for k in range(4)]
    for name in groups:
        builder.array(name, (64,), 8)
    nest = builder.nest("body", ("i",), (50,))
    labels = []
    for index in range(rng.randint(2, 10)):
        deps = [lbl for lbl in labels if rng.random() < 0.3]
        labels.append(
            nest.read(rng.choice(groups), label=f"a{index}", after=deps,
                      prob=rng.choice([0.25, 0.5, 1.0]))
        )
    program = builder.build()
    graph = BodyFlowGraph(program.nest("body"))
    for budget in (graph.macp, graph.macp + 2, graph.sequential_length):
        schedule = balance(graph, budget)
        schedule.verify()


def test_balance_cost_nonincreasing_with_budget():
    builder = ProgramBuilder("wide")
    for k in range(6):
        builder.array(f"g{k}", (64,), 8)
    nest = builder.nest("body", ("i",), (100,))
    for k in range(6):
        nest.read(f"g{k}")
    graph = BodyFlowGraph(builder.build().nest("body"))
    costs = [balance(graph, budget).cost() for budget in (1, 2, 3, 6)]
    assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))
    assert costs[-1] == 0.0


def test_max_cofire_respects_exclusivity():
    assert max_cofire(["H", "V", "D"]) == 1
    assert max_cofire(["", "", "H"]) == 3
    assert max_cofire(["D", "D:0"]) == 2
    assert max_cofire(["D:0", "D:1", "D:2"]) == 1
    assert max_cofire([]) == 0


def test_conflict_graph_from_schedule():
    builder = ProgramBuilder("pair")
    builder.array("a", (64,), 8)
    builder.array("b", (64,), 8)
    nest = builder.nest("body", ("i",), (100,))
    nest.read("a")
    nest.read("b")
    graph = BodyFlowGraph(builder.build().nest("body"))
    schedule = balance(graph, 1)  # forced into one cycle
    conflicts = ConflictGraph.from_schedules([schedule])
    assert conflicts.are_conflicting("a", "b")
    assert conflicts.weight("a", "b") == pytest.approx(100)
    assert conflicts.ports_for(("a", "b")) == 2
    assert conflicts.clique_lower_bound() >= 2


def test_distribute_accounts_cycles():
    program = _chain_program(4, trips=100)
    result = distribute(program, 1000)
    assert result.cycles_used <= 1000
    assert result.cycles_used >= 400  # at least MACP * trips
    assert result.spare_cycles == 1000 - result.cycles_used
    assert "body" in result.describe()


def test_distribute_raises_below_macp():
    program = _chain_program(4, trips=100)
    with pytest.raises(InfeasibleBudget):
        distribute(program, 399)


def test_macp_report_feasibility(btpc_program, constraints):
    report = analyze_macp(btpc_program, constraints.cycle_budget)
    assert report.feasible
    assert 0.5 < report.total_macp / constraints.cycle_budget < 1.0
    assert report.sequential_cycles > report.total_macp
    assert "encode_l0" in report.describe()

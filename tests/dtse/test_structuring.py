"""Structuring transforms: compaction and merging laws."""

import pytest

from repro.dtse import compact_group, merge_groups
from repro.explore import RMW_EXEMPT
from repro.ir import ProgramBuilder


def _pair_program(read_pairs=True, write_pairs=False, solo_write=False):
    builder = ProgramBuilder("pairs")
    builder.array("value", (100,), 8)
    builder.array("flag", (100,), 2)
    nest = builder.nest("body", ("i",), (100,))
    if read_pairs:
        nest.read("value", label="vr", pair="k")
        nest.read("flag", label="fr", pair="k")
    if write_pairs:
        nest.write("value", label="vw", pair="w")
        nest.write("flag", label="fw", pair="w")
    if solo_write:
        nest.write("flag", label="solo")
    return builder.build()


def test_merge_collapses_paired_reads():
    program = _pair_program(read_pairs=True)
    merged = merge_groups(program, "value", "flag", "record")
    counts = merged.access_counts()
    # Two paired reads become one record read per iteration.
    assert counts["record"].reads == 100
    assert counts["record"].writes == 0


def test_merge_collapses_paired_writes():
    program = _pair_program(read_pairs=False, write_pairs=True)
    merged = merge_groups(program, "value", "flag", "record")
    counts = merged.access_counts()
    assert counts["record"].writes == 100
    assert counts["record"].reads == 0  # full record written: no RMW


def test_merge_solo_write_needs_rmw():
    program = _pair_program(read_pairs=False, solo_write=True)
    merged = merge_groups(program, "value", "flag", "record")
    counts = merged.access_counts()
    assert counts["record"].writes == 100
    assert counts["record"].reads == 100  # the read-modify-write reads


def test_merge_same_key_read_covers_write():
    builder = ProgramBuilder("cover")
    builder.array("value", (100,), 8)
    builder.array("flag", (100,), 2)
    nest = builder.nest("body", ("i",), (100,))
    nest.read("value", label="vr", pair="k")
    nest.write("flag", label="fw", pair="k")
    merged = merge_groups(builder.build(), "value", "flag", "record")
    counts = merged.access_counts()
    # Read fetched the record; the field write needs no extra read.
    assert counts["record"].reads == 100
    assert counts["record"].writes == 100


def test_merge_rmw_exempt_liveness():
    program = _pair_program(read_pairs=False, solo_write=True)
    merged = merge_groups(
        program, "value", "flag", "record",
        rmw_exempt=(("body", "solo"),),
    )
    counts = merged.access_counts()
    assert counts["record"].reads == 0


def test_merge_rejects_unequal_words():
    builder = ProgramBuilder("bad")
    builder.array("a", (100,), 8)
    builder.array("b", (50,), 2)
    builder.nest("n", ("i",), (10,)).read("a")
    program = builder.build()
    with pytest.raises(Exception):
        merge_groups(program, "a", "b")


def test_compaction_coalesces_reads_and_rmws_writes():
    builder = ProgramBuilder("cmp")
    builder.array("flag", (90,), 2)
    nest = builder.nest("body", ("i",), (90,))
    nest.read("flag", label="r")
    nest.write("flag", label="w")
    compacted = compact_group(builder.build(), "flag", 3)
    group = compacted.group("flag_x3")
    assert group.words == 30
    assert group.bitwidth == 6
    counts = compacted.access_counts()
    assert counts["flag_x3"].reads == pytest.approx(90 / 3 + 90)  # +RMW
    assert counts["flag_x3"].writes == 90


def test_compaction_preserves_dependences():
    builder = ProgramBuilder("dep")
    builder.array("flag", (90,), 2)
    builder.array("out", (90,), 8)
    nest = builder.nest("body", ("i",), (90,))
    r = nest.read("flag", label="r")
    nest.write("out", label="o", after=[r])
    compacted = compact_group(builder.build(), "flag", 3)
    deps = compacted.nest("body").dependences
    assert ("r", "o") in deps


def test_btpc_merge_reduces_offchip_traffic(btpc_program):
    counts = btpc_program.access_counts()
    before = counts["pyr"].total + counts["ridge"].total
    merged = merge_groups(
        btpc_program, "pyr", "ridge", "pyrridge", rmw_exempt=RMW_EXEMPT
    )
    after = merged.access_counts()["pyrridge"].total
    assert after < before * 0.85  # a solid traffic cut


def test_transform_does_not_mutate_original(btpc_program):
    names_before = btpc_program.group_names
    merge_groups(btpc_program, "pyr", "ridge", rmw_exempt=RMW_EXEMPT)
    compact_group(btpc_program, "ridge", 3)
    assert btpc_program.group_names == names_before

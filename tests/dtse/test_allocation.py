"""Memory allocation and signal-to-memory assignment."""

import pytest

from repro.dtse.allocation.assign import (
    AssignmentError,
    assign_memories,
    build_nest_loads,
    page_factor,
    PAGE_HIT_FACTOR,
    PAGE_MISS_FACTOR,
    PAGE_MIX_FACTOR,
)
from repro.dtse.pipeline import make_cap_fn, make_weight_fn, run_pmm
from repro.dtse.scbd import distribute
from repro.ir import ProgramBuilder
from repro.memlib import MemoryKind, default_library


def _toy_program(n_groups=4):
    builder = ProgramBuilder("toy")
    for index in range(n_groups):
        builder.array(f"g{index}", (256,), 8 + 2 * index)
    nest = builder.nest("body", ("i",), (1000,))
    for index in range(n_groups):
        nest.read(f"g{index}")
    return builder.build()


def _allocate(program, budget, n_onchip=None, frame_time_s=1e-3, **kwargs):
    library = default_library()
    distribution = distribute(
        program, budget,
        make_weight_fn(program, library), make_cap_fn(program, library),
    )
    return assign_memories(
        program=program,
        conflicts=distribution.conflict_graph,
        library=library,
        frame_time_s=frame_time_s,
        nest_loads=build_nest_loads(program, distribution.budgets),
        n_onchip=n_onchip,
        **kwargs,
    )


def test_page_factor_rules():
    assert page_factor(1, True, 1) == PAGE_HIT_FACTOR
    assert page_factor(3, False, 4) == PAGE_MIX_FACTOR
    assert page_factor(3, False, 1) == PAGE_MISS_FACTOR


def test_fixed_allocation_counts():
    program = _toy_program(4)
    for count in (1, 2, 4):
        result = _allocate(program, 10_000, n_onchip=count)
        assert len(result.onchip) == count


def test_bitwidth_waste_is_modelled():
    program = _toy_program(2)  # widths 8 and 10
    merged_bins = _allocate(program, 10_000, n_onchip=1)
    split_bins = _allocate(program, 10_000, n_onchip=2)
    single = merged_bins.onchip[0]
    assert single.width == 10  # the wide group sets the memory width
    # Two right-sized memories avoid the wasted upper bits.
    assert sum(b.words * b.width for b in split_bins.onchip) < (
        single.words * single.width
    )


def test_conflicting_groups_need_ports_or_separation():
    program = _toy_program(2)
    # Budget 1: both reads land in the same cycle -> hard conflict.
    result = _allocate(program, 1000, n_onchip=1)
    assert result.onchip[0].ports == 2
    relaxed = _allocate(program, 2000, n_onchip=1)
    assert relaxed.onchip[0].ports == 1


def test_auto_allocation_beats_or_matches_fixed():
    program = _toy_program(4)
    auto = _allocate(program, 10_000)
    for count in (1, 2, 3, 4):
        fixed = _allocate(program, 10_000, n_onchip=count)
        assert auto.scalar_cost <= fixed.scalar_cost + 1e-6


def test_strict_rejects_infeasible():
    program = _toy_program(5)
    with pytest.raises(AssignmentError):
        _allocate(program, 10_000, n_onchip=6)


def test_offchip_page_behaviour_prices_stencils():
    builder = ProgramBuilder("page")
    builder.array("frame", (1 << 20,), 8)
    nest = builder.nest("scan", ("i",), (100_000,))
    nest.read("frame", label="seq", rows=1)
    sequential = builder.build()

    builder = ProgramBuilder("page2")
    builder.array("frame", (1 << 20,), 8)
    nest = builder.nest("scan", ("i",), (100_000,))
    nest.read("frame", label="stencil", rows=3)
    strided = builder.build()

    cost_seq = _allocate(
        sequential, 1_000_000, frame_time_s=0.02
    ).report.offchip_power_mw
    cost_str = _allocate(
        strided, 1_000_000, frame_time_s=0.02
    ).report.offchip_power_mw
    assert cost_str > cost_seq  # page misses (or extra banks) cost power


def test_register_groups_become_register_files(btpc_program, constraints):
    from repro.dtse import apply_hierarchy

    program = apply_hierarchy(
        btpc_program, "encode_l0", "image",
        use_registers=True, use_rowbuffer=False,
    )
    result = run_pmm(
        program, constraints.cycle_budget, constraints.frame_time_s,
        label="regs",
    )
    names = [b.module_name for b in result.allocation.registers]
    assert any(name.startswith("regfile") for name in names)
    # Register files are not part of the allocation count.
    assert all(
        "regfile" not in b.module_name for b in result.allocation.onchip
    )


def test_report_memory_kinds(btpc_program, constraints):
    result = run_pmm(
        btpc_program, constraints.cycle_budget, constraints.frame_time_s,
    )
    report = result.report
    assert report.onchip_area_mm2 > 0
    assert report.offchip_power_mw > 0
    assert all(m.kind is MemoryKind.OFFCHIP for m in report.offchip)
    assert report.total_power_mw == pytest.approx(
        report.onchip_power_mw + report.offchip_power_mw
    )

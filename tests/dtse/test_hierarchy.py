"""Reuse analysis and hierarchy insertion."""

import pytest

from repro.dtse import (
    apply_hierarchy,
    describe_stencil,
    find_stencil,
    hierarchy_alternatives,
)
from repro.ir import TransformError


def test_stencil_detected_on_image(btpc_program):
    pattern = find_stencil(btpc_program, "encode_l0", "image")
    assert pattern is not None
    assert pattern.row_span == 3
    assert pattern.col_span == 3
    # The paper's ylocal: 12 registers.
    assert pattern.window_words == 12
    assert 2.0 < pattern.reads_per_iteration < 4.0


def test_rowbuffer_sizing(btpc_program):
    pattern = find_stencil(btpc_program, "encode_l0", "image")
    # The paper's yhier: ~5K words (4 rows of 1024 here).
    assert pattern.rowbuffer_words(1024) == 4096
    assert pattern.rowbuffer_feed_per_iteration() == 1.0
    text = describe_stencil(pattern, 1024)
    assert "12 words" in text


def test_no_stencil_on_scan_arrays(btpc_program):
    assert find_stencil(btpc_program, "load", "image") is None
    with pytest.raises(TransformError):
        apply_hierarchy(btpc_program, "load", "image",
                        use_registers=True, use_rowbuffer=False)


def test_register_layer_is_foreground(btpc_program):
    transformed = apply_hierarchy(
        btpc_program, "encode_l0", "image",
        use_registers=True, use_rowbuffer=False,
    )
    ylocal = transformed.group("ylocal")
    assert ylocal.words == 12
    nest = transformed.nest("encode_l0")
    register_reads = [
        a for a in nest.iter_accesses() if a.group == "ylocal" and a.is_read
    ]
    assert register_reads and all(a.foreground for a in register_reads)
    # Image is still fed, sequentially, off the dependence chain.
    feeds = [a for a in nest.iter_accesses()
             if a.group == "image" and a.label.startswith("l0_feed")]
    assert feeds and feeds[0].dram_rows == 1


def test_rowbuffer_layer_is_background(btpc_program):
    transformed = apply_hierarchy(
        btpc_program, "encode_l0", "image",
        use_registers=False, use_rowbuffer=True,
    )
    yhier = transformed.group("yhier")
    assert yhier.words == 4096
    nest = transformed.nest("encode_l0")
    buffer_reads = [
        a for a in nest.iter_accesses() if a.group == "yhier" and a.is_read
    ]
    assert buffer_reads and not any(a.foreground for a in buffer_reads)


def test_two_layers_chain_feeds(btpc_program):
    transformed = apply_hierarchy(
        btpc_program, "encode_l0", "image",
        use_registers=True, use_rowbuffer=True,
    )
    counts = transformed.access_counts()
    # image feeds yhier once per source word (1/4 iteration rate).
    image_reads = counts["image"].reads
    base_reads = btpc_program.access_counts()["image"].reads
    assert image_reads < base_reads * 0.75


def test_hierarchy_reduces_image_traffic(btpc_program):
    base_reads = btpc_program.access_counts()["image"].reads
    for label, program in hierarchy_alternatives(
        btpc_program, "encode_l0", "image"
    ).items():
        if label == "No hierarchy":
            continue
        reads = program.access_counts()["image"].reads
        assert reads <= base_reads


def test_alternatives_are_four(btpc_program):
    options = hierarchy_alternatives(btpc_program, "encode_l0", "image")
    assert list(options) == [
        "No hierarchy",
        "Only layer 1 (yhier)",
        "Only layer 0 (ylocal)",
        "2 layers (both)",
    ]

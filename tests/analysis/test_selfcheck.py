"""The engine's standing gate: ``src/repro`` itself must be clean.

This is the same invocation the ``static-analysis`` CI job runs; if it
fails here, a concurrency/protocol invariant regressed (or a new
finding needs a fix or a suppression *with a written reason*).
"""

from pathlib import Path

from repro.analysis import all_rules, run_check

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_has_no_unsuppressed_findings():
    report = run_check([SRC], all_rules())
    assert report.files_checked > 50
    offenders = [f.format() for f in report.unsuppressed]
    assert not offenders, "\n".join(offenders)


def test_every_suppression_carries_a_reason():
    report = run_check([SRC], all_rules())
    for finding in report.findings:
        if finding.suppressed:
            assert finding.reason.strip(), finding.format()
    # Reasonless or malformed suppressions surface as warnings; the
    # tree must not carry any.
    assert report.warnings == []


def test_known_audited_suppressions_present():
    # The PR 9 audit's accepted findings: loop-thread counter bumps in
    # the cache server, the serialized-socket send in RemoteCache, and
    # the interpreter-exit finalizers.  If a refactor removes one, this
    # list (not the gate above) is what should change.
    report = run_check([SRC], all_rules())
    suppressed = {(f.rule, Path(f.path).name) for f in report.findings if f.suppressed}
    assert ("RA001", "server.py") in suppressed
    assert ("RA002", "cache.py") in suppressed
    assert ("RA006", "engine.py") in suppressed

"""Interpreter-shutdown safety for the RA006-audited finalizer paths.

A module-scope ``Explorer`` (live pool) or ``RemoteCache`` (live
flusher thread, unreachable server) collected at interpreter exit must
not print tracebacks, hang, or change the exit code — module globals
may already be ``None`` by the time ``__del__`` runs.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run(script: str, timeout: float = 60.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(script)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


def test_module_scope_explorer_exits_clean():
    proc = _run(
        """
        from repro.api import Explorer
        from repro.apps import get_app

        explorer = Explorer(get_app("btpc").space(), workers=2)
        explorer._ensure_pool()  # a live worker pool at interpreter exit
        print("ready")
        """
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ready"
    assert proc.stderr == ""


def test_module_scope_remote_cache_exits_clean():
    proc = _run(
        """
        from repro.explore.cache import RemoteCache

        # Port 1: nothing listens; the flusher thread spins up on the
        # first store and retries against the outage.
        cache = RemoteCache("127.0.0.1", 1, retry_seconds=30.0)
        cache.put("k", {"v": 1})
        print("ready")
        """
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ready"
    assert proc.stderr == ""


def test_explorer_del_tolerates_torn_down_pool():
    class _BrokenPool:
        def shutdown(self, wait=False):
            raise RuntimeError("globals are gone")

    from repro.api import Explorer

    explorer = Explorer.__new__(Explorer)
    explorer.__dict__["_pool"] = _BrokenPool()
    explorer.__del__()  # must swallow: finalizers cannot raise usefully
    assert explorer.__dict__["_pool"] is None


def test_remote_cache_del_tolerates_partial_init():
    from repro.explore.cache import RemoteCache

    cache = RemoteCache.__new__(RemoteCache)
    cache.__del__()  # nothing initialized at all: still silent


def test_discard_pool_counts_shutdown_failures():
    # Regression for the RA006 fix: a pool whose shutdown itself raises
    # is counted, not silently swallowed.
    class _BrokenPool:
        def shutdown(self, wait=False):
            raise OSError("already dead")

    from repro.api import Explorer

    explorer = Explorer(workers=2)
    assert explorer._pool_discard_failures == 0
    explorer._discard_pool(_BrokenPool())
    assert explorer._pool_discard_failures == 1
    explorer.close()

"""CLI contract: exit codes, output formats, suppression parsing."""

import json

import pytest

from repro.analysis import (
    PARSE_RULE,
    REPORT_VERSION,
    all_rules,
    parse_suppressions,
    run_check,
)
from repro.analysis.__main__ import EXIT_FINDINGS, EXIT_OK, EXIT_USAGE, main

_CLEAN = "def warm(path):\n    return path\n"
_DIRTY = "async def f():\n    time.sleep(1)\n"


@pytest.fixture()
def clean_tree(tmp_path):
    (tmp_path / "ok.py").write_text(_CLEAN, encoding="utf-8")
    return tmp_path


@pytest.fixture()
def dirty_tree(tmp_path):
    (tmp_path / "bad.py").write_text(_DIRTY, encoding="utf-8")
    return tmp_path


# ----------------------------------------------------------------------
# Exit codes
# ----------------------------------------------------------------------
class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert main(["check", str(clean_tree)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_findings_exit_one(self, dirty_tree, capsys):
        assert main(["check", str(dirty_tree)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RA001" in out
        assert "time.sleep" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.txt"
        assert main(["check", str(missing)]) == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_unknown_select_exits_two(self, clean_tree, capsys):
        code = main(["check", str(clean_tree), "--select", "RA999"])
        assert code == EXIT_USAGE
        assert "RA999" in capsys.readouterr().err

    def test_unknown_explain_exits_two(self, capsys):
        assert main(["explain", "RA999"]) == EXIT_USAGE
        assert "RA999" in capsys.readouterr().err

    def test_select_limits_rules(self, dirty_tree, capsys):
        # RA006 alone does not fire on the RA001 fixture.
        code = main(["check", str(dirty_tree), "--select", "RA006"])
        assert code == EXIT_OK
        capsys.readouterr()

    def test_parse_error_fails_check(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
        assert main(["check", str(tmp_path)]) == EXIT_FINDINGS
        assert PARSE_RULE in capsys.readouterr().out


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------
class TestOutput:
    def test_json_schema_stable(self, dirty_tree, capsys):
        main(["check", str(dirty_tree), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == [
            "files_checked",
            "findings",
            "rules",
            "version",
            "warnings",
        ]
        assert payload["version"] == REPORT_VERSION
        assert payload["files_checked"] == 1
        assert payload["rules"] == [r.rule_id for r in all_rules()]
        (finding,) = payload["findings"]
        assert sorted(finding) == [
            "col",
            "line",
            "message",
            "path",
            "reason",
            "rule",
            "suppressed",
        ]
        assert finding["rule"] == "RA001"
        assert finding["line"] == 2

    def test_text_line_format(self, dirty_tree, capsys):
        main(["check", str(dirty_tree)])
        first = capsys.readouterr().out.splitlines()[0]
        path, line, rest = first.split(":", 2)
        assert path.endswith("bad.py")
        assert line == "2"
        col, rule, _message = rest.split(" ", 2)
        assert col.isdigit()
        assert rule == "RA001"

    def test_suppressed_hidden_by_default(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(
            "async def f():\n"
            "    time.sleep(1)  # repro: allow[RA001] fixture: test double\n",
            encoding="utf-8",
        )
        assert main(["check", str(tmp_path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "time.sleep" not in out
        assert "(1 suppressed)" in out

    def test_show_suppressed_flag(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(
            "async def f():\n"
            "    time.sleep(1)  # repro: allow[RA001] fixture: test double\n",
            encoding="utf-8",
        )
        code = main(["check", str(tmp_path), "--show-suppressed"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "[suppressed: fixture: test double]" in out

    def test_list_rules(self, capsys):
        assert main(["list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out
            assert rule.name in out

    def test_explain(self, capsys):
        assert main(["explain", "no-lock-across-await"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "RA002" in out
        assert "History:" in out


# ----------------------------------------------------------------------
# Suppression-comment parsing edge cases
# ----------------------------------------------------------------------
class TestSuppressionParsing:
    def test_same_line_targets_itself(self):
        (s,) = parse_suppressions("x = 1  # repro: allow[RA001] why not\n")
        assert (s.line, s.target) == (1, 1)
        assert s.rule_ids == ("RA001",)
        assert s.reason == "why not"

    def test_comment_above_targets_next_line(self):
        source = "# repro: allow[RA002] held on purpose\nx = 1\n"
        (s,) = parse_suppressions(source)
        assert (s.line, s.target) == (1, 2)

    def test_multiple_rule_ids(self):
        (s,) = parse_suppressions(
            "# repro: allow[RA001, RA006] shared fixture\nx = 1\n"
        )
        assert s.rule_ids == ("RA001", "RA006")

    def test_trailing_text_is_the_reason(self):
        (s,) = parse_suppressions(
            "x = 1  # repro: allow[RA001] loopback only; see PR 7 review\n"
        )
        assert s.reason == "loopback only; see PR 7 review"

    def test_docstring_mention_not_a_suppression(self):
        # The syntax documented in a string literal must not parse.
        source = '"""Use # repro: allow[RA001] reason to suppress."""\nx = 1\n'
        assert parse_suppressions(source) == []

    def test_unknown_rule_id_warns(self, tmp_path):
        (tmp_path / "f.py").write_text(
            "x = 1  # repro: allow[RA042] not a rule\n", encoding="utf-8"
        )
        report = run_check([tmp_path], all_rules())
        assert any("unknown rule 'RA042'" in w for w in report.warnings)

    def test_reasonless_suppression_ignored_with_warning(self, tmp_path):
        (tmp_path / "f.py").write_text(
            "async def f():\n    time.sleep(1)  # repro: allow[RA001]\n",
            encoding="utf-8",
        )
        report = run_check([tmp_path], all_rules())
        assert not report.ok  # the finding is NOT suppressed
        assert any("without a reason" in w for w in report.warnings)

    def test_empty_bracket_warns(self, tmp_path):
        (tmp_path / "f.py").write_text(
            "x = 1  # repro: allow[] oops\n", encoding="utf-8"
        )
        report = run_check([tmp_path], all_rules())
        assert any("names no rules" in w for w in report.warnings)

    def test_parse_failure_never_suppressable(self, tmp_path):
        (tmp_path / "f.py").write_text(
            "# repro: allow[RA000] trust me\ndef f(:\n", encoding="utf-8"
        )
        report = run_check([tmp_path], all_rules())
        assert not report.ok
        assert report.findings[0].rule == PARSE_RULE
        assert not report.findings[0].suppressed

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        (tmp_path / "f.py").write_text(
            "async def f():\n"
            "    time.sleep(1)  # repro: allow[RA006] wrong rule\n",
            encoding="utf-8",
        )
        report = run_check([tmp_path], all_rules())
        assert not report.ok


def test_module_invocation_smoke(tmp_path):
    # `python -m repro.analysis` end to end, the way CI runs it.
    import subprocess
    import sys

    (tmp_path / "ok.py").write_text(_CLEAN, encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "check", str(tmp_path)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "0 findings" in proc.stdout

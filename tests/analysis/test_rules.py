"""Fixture-snippet tests: every rule fires on a known-bad snippet.

Each positive fixture is modeled on a real bug from this repo's
history (the PR 6 blocking-I/O-in-handler bug, the PR 7 flush race);
each negative fixture is the shape the fix landed in.
"""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Module, parse_suppressions, run_check
from repro.analysis.rules import all_rules, get_rule, select_rules


def _module(source: str, display: str = "snippet.py") -> Module:
    source = textwrap.dedent(source)
    return Module(
        path=Path(display),
        display=display,
        source=source,
        tree=ast.parse(source),
        suppressions=parse_suppressions(source),
    )


def _check(rule_id: str, source: str, display: str = "snippet.py"):
    rule = get_rule(rule_id)
    module = _module(source, display)
    findings = list(rule.check_module(module))
    findings.extend(rule.check_project([module]))
    return findings


# ----------------------------------------------------------------------
# RA001 — blocking calls in async bodies
# ----------------------------------------------------------------------
class TestNoBlockingInAsync:
    def test_pr6_blocking_io_in_handler(self):
        # The PR 6 bug shape: a request handler doing disk I/O inline
        # on the event loop instead of pushing it to a worker thread.
        findings = _check(
            "RA001",
            """\
            async def handle_frame(self, body):
                payload = open(self.corpus_path, "rb").read()
                return payload
            """,
        )
        assert len(findings) == 1
        assert "open(...)" in findings[0].message
        assert findings[0].line == 2

    def test_time_sleep_and_socket_ops(self):
        findings = _check(
            "RA001",
            """\
            async def poll(sock):
                time.sleep(0.1)
                sock.sendall(b"ping")
                return sock.recv(4)
            """,
        )
        assert [f.line for f in findings] == [2, 3, 4]

    def test_sync_lock_in_async_def(self):
        findings = _check(
            "RA001",
            """\
            async def bump(self):
                with self.counters_lock:
                    self.requests += 1
            """,
        )
        assert len(findings) == 1
        assert "counters_lock" in findings[0].message

    def test_lock_acquire_in_async_def(self):
        findings = _check(
            "RA001",
            """\
            async def bump(self):
                self.lock.acquire()
                self.lock.release()
            """,
        )
        assert len(findings) == 1
        assert "acquire" in findings[0].message

    def test_to_thread_wrapped_is_clean(self):
        # The PR 6 fix shape: the blocking work is *referenced*, not
        # called, and runs on a worker thread.
        assert not _check(
            "RA001",
            """\
            async def handle_frame(self, body):
                return await asyncio.to_thread(self._handle_get, body)
            """,
        )

    def test_nested_sync_helper_not_scanned(self):
        assert not _check(
            "RA001",
            """\
            async def outer(self):
                def helper():
                    time.sleep(1)
                return await asyncio.to_thread(helper)
            """,
        )

    def test_sync_function_untouched(self):
        assert not _check(
            "RA001",
            """\
            def warm(path):
                return open(path, "rb").read()
            """,
        )


# ----------------------------------------------------------------------
# RA002 — lock held across await / blocking I/O
# ----------------------------------------------------------------------
class TestNoLockAcrossAwait:
    def test_await_under_with_lock(self):
        findings = _check(
            "RA002",
            """\
            async def serve(self):
                with self.lock:
                    await self.backend.get(1)
            """,
        )
        assert len(findings) == 1
        assert "await" in findings[0].message

    def test_pr7_flush_race_fixture(self):
        # The PR 7 write-behind flush race: flush() slept *inside* the
        # state lock while the background flusher needed it.
        findings = _check(
            "RA002",
            """\
            def flush(self, timeout=None):
                with self._state_lock:
                    if not self._push(self._take_batch_locked()):
                        time.sleep(self.retry_seconds)
            """,
        )
        assert len(findings) == 1
        assert "_state_lock" in findings[0].message
        assert "time.sleep" in findings[0].message

    def test_pr7_fix_shape_is_clean(self):
        # The landed fix: take the batch under the lock, sleep outside.
        assert not _check(
            "RA002",
            """\
            def flush(self, timeout=None):
                with self._state_lock:
                    batch = self._take_batch_locked()
                if not self._push(batch):
                    time.sleep(self.retry_seconds)
            """,
        )

    def test_bare_acquire_tracked_until_release(self):
        findings = _check(
            "RA002",
            """\
            def push(self):
                self._io_lock.acquire()
                self.sock.sendall(b"x")
                self._io_lock.release()
                self.sock.sendall(b"y")
            """,
        )
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_async_with_and_async_for_flagged(self):
        findings = _check(
            "RA002",
            """\
            async def stream(self):
                with self.lock:
                    async with self.session:
                        pass
            """,
        )
        assert len(findings) == 1
        assert "async with" in findings[0].message

    def test_non_lock_with_is_clean(self):
        assert not _check(
            "RA002",
            """\
            async def load(self):
                with self.tracer:
                    await self.backend.get(1)
            """,
        )


# ----------------------------------------------------------------------
# RA003 — lock-ordering consistency
# ----------------------------------------------------------------------
class TestLockOrderConsistency:
    def test_opposite_orders_flagged(self):
        rule = get_rule("RA003")
        module_a = _module(
            """\
            def close(self):
                with self.pool_lock:
                    with self.cache_lock:
                        pass
            """,
            "a.py",
        )
        module_b = _module(
            """\
            def evaluate(self):
                with self.cache_lock:
                    with self.pool_lock:
                        pass
            """,
            "b.py",
        )
        findings = list(rule.check_project([module_a, module_b]))
        assert len(findings) == 1
        assert "inconsistent lock order" in findings[0].message
        assert "pool_lock" in findings[0].message
        assert "cache_lock" in findings[0].message

    def test_consistent_nesting_is_clean(self):
        rule = get_rule("RA003")
        module_a = _module(
            """\
            def rpc(self):
                with self._io_lock:
                    with self._state_lock:
                        pass

            def other(self):
                with self._io_lock:
                    self._state_lock.acquire()
            """,
            "a.py",
        )
        assert not list(rule.check_project([module_a]))

    def test_self_nesting_flagged(self):
        # `with lock: with lock:` deadlocks unless the lock is an
        # RLock — the cycle detector treats it as a one-node cycle.
        rule = get_rule("RA003")
        module = _module(
            """\
            def reenter(self):
                with self.lock:
                    with self.lock:
                        pass
            """,
        )
        findings = list(rule.check_project([module]))
        assert len(findings) == 1

    def test_acquire_under_with_contributes_edge(self):
        rule = get_rule("RA003")
        module = _module(
            """\
            def one(self):
                with self.a_lock:
                    self.b_lock.acquire()

            def two(self):
                with self.b_lock:
                    self.a_lock.acquire()
            """,
        )
        assert len(list(rule.check_project([module]))) == 1


# ----------------------------------------------------------------------
# RA004 — protocol/codec cross-consistency
# ----------------------------------------------------------------------
_DECL = """\
COMPACT_MAGIC = b"\\x93RPC"
_U32 = struct.Struct("<I")
RECORD_VERSION = 3
"""

_CONS = """\
HELLO_MAGIC = b"\\x93RCS"
_U32 = struct.Struct("<I")
OP_GET = 2
OP_PUT = 3
STATUS_OK = 0
STATUS_ERROR = 1
"""


class TestProtocolConsistency:
    @staticmethod
    def _modules(decl: str, cons: str):
        return [
            _module(decl, "src/repro/costs/report.py"),
            _module(cons, "src/repro/cacheserver/protocol.py"),
        ]

    @classmethod
    def _run(cls, decl: str, cons: str):
        rule = get_rule("RA004")
        modules = [
            _module(decl, "src/repro/costs/report.py"),
            _module(cons, "src/repro/cacheserver/protocol.py"),
        ]
        # check_project locates the two files by path suffix.
        for module, suffix in zip(
            modules, (("costs", "report.py"), ("cacheserver", "protocol.py"))
        ):
            assert module.path.parts[-2:] == suffix
        return list(rule.check_project(modules))

    def test_matching_tables_clean(self):
        assert not self._run(_DECL, _CONS)

    def test_shared_struct_format_mismatch(self):
        bad = _CONS.replace('_U32 = struct.Struct("<I")', '_U32 = struct.Struct(">I")')
        findings = self._run(_DECL, bad)
        assert len(findings) == 1
        assert "_U32" in findings[0].message

    def test_duplicate_opcode(self):
        bad = _CONS.replace("OP_PUT = 3", "OP_PUT = 2")
        findings = self._run(_DECL, bad)
        assert len(findings) == 1
        assert "must be unique" in findings[0].message

    def test_duplicate_status(self):
        bad = _CONS.replace("STATUS_ERROR = 1", "STATUS_ERROR = 0")
        findings = self._run(_DECL, bad)
        assert len(findings) == 1

    def test_magic_collision(self):
        bad = _CONS.replace('b"\\x93RCS"', 'b"\\x93RPC"')
        findings = self._run(_DECL, bad)
        assert len(findings) == 1
        assert "byte prefix" in findings[0].message

    def test_inactive_without_both_files(self):
        rule = get_rule("RA004")
        assert not list(
            rule.check_project([_module(_DECL, "src/repro/costs/report.py")])
        )


# ----------------------------------------------------------------------
# RA005 — CacheBackend implementer contract
# ----------------------------------------------------------------------
_BACKEND_BODY = """\
    def get(self, key):
        return None

    def put(self, key, value):
        pass

    def clear(self):
        pass

    def __len__(self):
        return 0
"""


class TestBackendContract:
    def test_missing_bulk_hooks(self):
        findings = _check(
            "RA005",
            "class SlowBackend:\n" + _BACKEND_BODY,
        )
        assert len(findings) == 2
        hooks = {
            ("lookup_many" in f.message, "store_many" in f.message)
            for f in findings
        }
        assert hooks == {(True, False), (False, True)}

    def test_full_surface_is_clean(self):
        source = (
            "class GoodBackend:\n"
            + _BACKEND_BODY
            + """\

    def lookup_many(self, keys):
        return {}

    def store_many(self, entries):
        pass
"""
        )
        assert not _check("RA005", source)

    def test_oracle_call_flagged(self):
        source = (
            "class CheatingBackend:\n"
            + _BACKEND_BODY
            + """\

    def lookup_many(self, keys):
        return {k: run_pmm(self.requests[k]) for k in keys}

    def store_many(self, entries):
        pass
"""
        )
        findings = _check("RA005", source)
        assert len(findings) == 1
        assert "oracle" in findings[0].message

    def test_protocol_class_exempt(self):
        assert not _check(
            "RA005",
            "class CacheBackend(Protocol):\n" + _BACKEND_BODY,
        )

    def test_partial_class_not_a_backend(self):
        # A mapping-ish class that lacks the full backend surface is
        # not held to the backend contract.
        assert not _check(
            "RA005",
            """\
            class Index:
                def get(self, key):
                    return None

                def __len__(self):
                    return 0
            """,
        )


# ----------------------------------------------------------------------
# RA006 — swallowed exceptions
# ----------------------------------------------------------------------
class TestNoSwallowedExceptions:
    @pytest.mark.parametrize(
        "handler",
        ["except Exception:", "except BaseException:", "except:"],
    )
    def test_broad_swallow_flagged(self, handler):
        findings = _check(
            "RA006",
            f"""\
            def flush_loop(self):
                try:
                    self._push()
                {handler}
                    pass
            """,
        )
        assert len(findings) == 1

    def test_tuple_with_broad_member_flagged(self):
        findings = _check(
            "RA006",
            """\
            def flush_loop(self):
                try:
                    self._push()
                except (OSError, Exception):
                    pass
            """,
        )
        assert len(findings) == 1

    def test_narrow_handler_exempt(self):
        assert not _check(
            "RA006",
            """\
            def close_socket(sock):
                try:
                    sock.close()
                except OSError:
                    pass
            """,
        )

    def test_counter_increment_is_handling(self):
        # The PR 9 _discard_pool fix shape: the failure is counted.
        assert not _check(
            "RA006",
            """\
            def discard(self, pool):
                try:
                    pool.shutdown(wait=False)
                except Exception:
                    self._pool_discard_failures += 1
            """,
        )

    def test_logging_is_handling(self):
        assert not _check(
            "RA006",
            """\
            def flush_loop(self):
                try:
                    self._push()
                except Exception:
                    log.warning("push failed")
            """,
        )

    def test_reraise_is_handling(self):
        assert not _check(
            "RA006",
            """\
            def flush_loop(self):
                try:
                    self._push()
                except Exception:
                    raise
            """,
        )


# ----------------------------------------------------------------------
# RA007 — strategies never evaluate inside propose()
# ----------------------------------------------------------------------
class TestStrategyProposePurity:
    def test_oracle_call_in_propose(self):
        # The layering inversion the PR 10 driver refactor forbids: a
        # strategy running the oracle itself while nominating points.
        findings = _check(
            "RA007",
            """\
            class EagerStrategy:
                def propose(self, state):
                    result = run_pmm(self.program, self.budget)
                    return [result.point]

                def observe(self, records):
                    pass
            """,
        )
        assert len(findings) == 1
        assert "the oracle" in findings[0].message
        assert "EagerStrategy" in findings[0].message

    def test_evaluate_many_in_propose(self):
        findings = _check(
            "RA007",
            """\
            class PeekingStrategy:
                def propose(self, state):
                    records = self.explorer.evaluate_many(self.batch, "peek")
                    return [r.point for r in records if r.cache_hit]

                def observe(self, records):
                    pass
            """,
        )
        assert len(findings) == 1
        assert "the evaluation engine" in findings[0].message

    def test_cache_backend_in_propose_helper(self):
        # Hiding the probe in a same-class helper does not evade the
        # rule: propose's reachable slice is scanned transitively.
        findings = _check(
            "RA007",
            """\
            class ProbingStrategy:
                def propose(self, state):
                    return self._warm_points()

                def _warm_points(self):
                    return [
                        point
                        for point in self.pending
                        if self.cache.get(self.keys[point]) is not None
                    ]

                def observe(self, records):
                    pass
            """,
        )
        assert len(findings) == 1
        assert "the cache backend" in findings[0].message
        assert "via helper '_warm_points'" in findings[0].message

    def test_clean_strategy_passes(self):
        # The shape the real strategies landed in: propose nominates,
        # observe digests, evaluation stays in the driver.
        findings = _check(
            "RA007",
            """\
            class LazySweep:
                def propose(self, state):
                    size = self.batch_size
                    remaining = state.remaining_points()
                    if remaining is not None:
                        size = min(size, max(1, remaining))
                    batch = list(itertools.islice(self._iterator, size))
                    return batch or None

                def observe(self, records):
                    for record in records:
                        self._seen[record.point] = record
            """,
        )
        assert findings == []

    def test_observe_may_touch_sessions_and_dict_get(self):
        # observe() logging to a session and plain dict .get calls in
        # propose are both fine — only oracle/engine/backend surfaces
        # inside propose's slice are flagged.
        findings = _check(
            "RA007",
            """\
            class DecidingStrategy:
                def propose(self, state):
                    return [p for p in self.pending if self._seen.get(p) is None]

                def observe(self, records):
                    for record in records:
                        self.session.log_record(record)
                    self.session.choose(self.step, records[0].label)
            """,
        )
        assert findings == []

    def test_non_strategy_classes_exempt(self):
        # A class without the propose/observe pair is not a strategy;
        # the evaluation engine itself calls the oracle by design.
        findings = _check(
            "RA007",
            """\
            class Explorer:
                def propose(self, state):
                    return run_pmm(self.program, self.budget)
            """,
        )
        assert findings == []

    def test_real_strategies_are_clean(self):
        rule = get_rule("RA007")
        path = (
            Path(__file__).resolve().parents[2]
            / "src"
            / "repro"
            / "explore"
            / "strategies.py"
        )
        source = path.read_text(encoding="utf-8")
        module = _module(source, "src/repro/explore/strategies.py")
        assert list(rule.check_module(module)) == []


# ----------------------------------------------------------------------
# Registry surface
# ----------------------------------------------------------------------
class TestRegistry:
    def test_pack_is_complete(self):
        assert [r.rule_id for r in all_rules()] == [
            "RA001",
            "RA002",
            "RA003",
            "RA004",
            "RA005",
            "RA006",
            "RA007",
        ]

    def test_metadata_present(self):
        for rule in all_rules():
            assert rule.name and rule.title
            assert rule.rationale, f"{rule.rule_id} has no historical bug"
            assert rule.explain

    def test_lookup_by_id_and_name(self):
        assert get_rule("RA002") is get_rule("no-lock-across-await")
        with pytest.raises(KeyError):
            get_rule("RA999")

    def test_select_rules(self):
        assert select_rules(None) == all_rules()
        subset = select_rules(["RA001", "no-swallowed-exceptions"])
        assert [r.rule_id for r in subset] == ["RA001", "RA006"]


def test_full_check_applies_suppressions(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "async def f(sock):\n"
        "    sock.sendall(b'x')  # repro: allow[RA001] fixture: loopback only\n"
        "    time.sleep(1)\n",
        encoding="utf-8",
    )
    report = run_check([tmp_path], all_rules())
    assert len(report.findings) == 2
    suppressed = [f for f in report.findings if f.suppressed]
    assert len(suppressed) == 1
    assert suppressed[0].reason == "fixture: loopback only"
    assert not report.ok  # the unsuppressed time.sleep still fails

"""The cavity-detection workload."""

import pytest

from repro.apps.cavity import CavityConstraints, build_cavity_program
from repro.apps.cavity.app import _full_line_buffering, _gauss_line_buffer
from repro.dtse import analyze_macp, find_stencil, run_pmm


@pytest.fixture(scope="module")
def program():
    return build_cavity_program()


def test_spec_builds_and_validates(program):
    assert set(program.group_names) == {
        "image", "gauss_x", "gauss_xy", "comp_edge", "roots", "maxv",
    }
    counts = program.access_counts()
    constraints = CavityConstraints()
    # Every stage consumes its predecessor's full frame at least once.
    assert counts["gauss_x"].reads >= 3 * constraints.pixels
    assert counts["comp_edge"].writes == constraints.pixels
    assert counts["roots"].writes == constraints.pixels


def test_inter_stage_stencils_are_recognized(program):
    """Each filter stage exposes a harvestable window on its input."""
    for nest, group in (
        ("gauss_x", "image"),
        ("gauss_y", "gauss_x"),
        ("comp_edge", "gauss_xy"),
        ("detect_roots", "comp_edge"),
    ):
        pattern = find_stencil(program, nest, group)
        assert pattern is not None, f"no stencil on {group} in {nest}"
    vertical = find_stencil(program, "gauss_y", "gauss_x")
    assert vertical.row_span == 3 and vertical.col_span == 1
    edges = find_stencil(program, "comp_edge", "gauss_xy")
    assert edges.row_span == 3 and edges.col_span == 3


def test_macp_feasible(program):
    constraints = CavityConstraints()
    assert analyze_macp(program, constraints.cycle_budget).feasible


def test_line_buffers_cut_offchip_power(program):
    """The hierarchy variants intercept the inter-stage frame traffic."""
    constraints = CavityConstraints()
    baseline = run_pmm(
        program, constraints.cycle_budget, constraints.frame_time_s,
        label="baseline",
    ).report
    buffered = run_pmm(
        _full_line_buffering(program, constraints),
        constraints.cycle_budget, constraints.frame_time_s,
        label="full line buffering",
    ).report
    assert baseline.offchip_power_mw > 0
    assert buffered.offchip_power_mw < baseline.offchip_power_mw
    # The line buffers cost on-chip area that the baseline did not pay.
    assert buffered.onchip_area_mm2 > baseline.onchip_area_mm2


def test_single_line_buffer_adds_one_group(program):
    constraints = CavityConstraints()
    transformed = _gauss_line_buffer(program, constraints)
    added = set(transformed.group_names) - set(program.group_names)
    assert added == {"yhier"}

"""The workload registry: protocol, determinism, end-to-end sweeps."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.api import (
    AppSpec,
    DesignSpace,
    ExhaustiveSweep,
    Explorer,
    fingerprint_request,
    get_app,
    list_apps,
    register_app,
)
from repro.apps.btpc.app import STRUCTURING_VARIANTS

FAST_APPS = ("cavity", "motion", "wavelet")


# ----------------------------------------------------------------------
# Registration protocol
# ----------------------------------------------------------------------
def test_builtin_workloads_are_registered():
    names = list_apps()
    assert len(names) >= 4
    assert {"btpc", "cavity", "motion", "wavelet"} <= set(names)
    assert names == tuple(sorted(names))


def test_get_app_unknown_name_lists_known():
    with pytest.raises(KeyError, match="wavelet"):
        get_app("no-such-app")


def test_register_duplicate_requires_replace(monkeypatch):
    from repro.apps import registry

    monkeypatch.setattr(registry, "_REGISTRY", dict(registry._REGISTRY))
    spec = get_app("motion")
    with pytest.raises(ValueError, match="already registered"):
        register_app(spec)
    assert register_app(spec, replace=True) is spec


def test_custom_app_spec_round_trips_through_registry(monkeypatch):
    from repro.apps import registry
    from repro.ir import ProgramBuilder

    monkeypatch.setattr(registry, "_REGISTRY", dict(registry._REGISTRY))

    class Constraints:
        cycle_budget = 10_000
        frame_time_s = 1e-3

    def build(constraints):
        builder = ProgramBuilder("toy")
        builder.array("a", (256,), 8)
        nest = builder.nest("scan", ("i",), (256,))
        nest.read("a", index=("i",))
        return builder.build()

    register_app(
        AppSpec(
            name="toy",
            title="toy scan",
            description="one array, one nest",
            constraints_factory=Constraints,
            build_program=build,
        )
    )
    assert "toy" in list_apps()
    space = DesignSpace.for_app("toy")
    result = Explorer(space).run(ExhaustiveSweep())
    assert [record.label for record in result.records] == ["baseline"]


# ----------------------------------------------------------------------
# Default spaces: deterministic enumeration
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app", FAST_APPS + ("btpc",))
def test_variant_names_match_default_space(app):
    spec = get_app(app)
    assert spec.space().variant_names == spec.variant_names


@pytest.mark.parametrize("app", FAST_APPS)
def test_enumeration_is_deterministic(app):
    spec = get_app(app)
    first, second = spec.space(), spec.space()
    assert first.points() == second.points()
    assert len(first) == len(first.points())
    assert first.corners() == second.corners()


# ----------------------------------------------------------------------
# Fingerprint stability across processes (guards the memoization cache)
# ----------------------------------------------------------------------
_FINGERPRINT_SCRIPT = """
import json
from repro.api import Explorer, fingerprint_request

out = {}
for name in %r:
    explorer = Explorer.for_app(name)
    out[name] = [
        fingerprint_request(explorer.request_for(point))
        for point in explorer.space.points()
    ]
print(json.dumps(out))
"""


def test_fingerprints_are_stable_across_processes():
    """A fresh interpreter fingerprints every point identically.

    This is what makes the content-addressed cache shareable across
    runs and worker processes: any hash-seed or dict-order dependence
    in program construction or canonicalization would break it.
    """
    local = {}
    for name in FAST_APPS:
        explorer = Explorer.for_app(name)
        local[name] = [
            fingerprint_request(explorer.request_for(point))
            for point in explorer.space.points()
        ]
    src = pathlib.Path(repro.__file__).parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "random"
    output = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT % (FAST_APPS,)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    ).stdout
    assert json.loads(output) == local


# ----------------------------------------------------------------------
# End-to-end from the registry alone
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app", FAST_APPS)
def test_registry_sweep_end_to_end(app, registry_sweeps):
    result, explorer = registry_sweeps[app]
    assert result.space_name == app
    assert len(result.records) >= 4
    assert len(result.records) + len(explorer.failures) == len(explorer.space)
    front = result.pareto_front()
    assert front
    assert result.knee_point() in front


def test_btpc_registry_space_shares_study_fingerprints(study):
    """The registry space reproduces the study's programs bit-for-bit.

    Sweeping the Table 1 alternatives through a fresh explorer that
    shares the study's cache must hit on every point: the registry and
    the study build from one space definition, so their fingerprints
    coincide and no oracle run is duplicated.
    """
    study.table1()  # make sure the structuring evaluations are cached
    space = DesignSpace.for_app("btpc", constraints=study.constraints)
    explorer = Explorer(space, cache=study.explorer.cache)
    points = [space.point(name) for name in STRUCTURING_VARIANTS]
    result = explorer.run(ExhaustiveSweep(points=points))
    assert [record.label for record in result.records] == list(
        STRUCTURING_VARIANTS
    )
    assert all(record.cache_hit for record in result.records)

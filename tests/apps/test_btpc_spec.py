"""The BTPC specification: the 18 basic groups and calibrated counts."""

import pytest

from repro.apps.btpc import (
    upper_detail_count,
    upper_pyramid_words,
)
from repro.ir import validate_program


def test_constraints_derivation(constraints):
    assert constraints.pixels == 1 << 20
    assert constraints.frame_time_s == pytest.approx(1.048576)
    # "a total of 20 million" cycles (paper §4.5).
    assert constraints.cycle_budget == 20_971_520
    assert constraints.access_rate_hz(1 << 20) == pytest.approx(1e6)


def test_geometry_helpers():
    # 512^2 + 256^2 + ... + 8^2
    assert upper_pyramid_words(1024) == sum((1024 >> k) ** 2 for k in range(1, 8))
    assert upper_detail_count(1024) == sum(
        3 * ((1024 >> k) // 2) ** 2 for k in range(1, 7)
    )


def test_eighteen_basic_groups(btpc_program):
    assert len(btpc_program.groups) == 18
    names = set(btpc_program.group_names)
    assert {"image", "pyr", "ridge", "hleaf", "quant", "outbuf"} <= names
    assert {f"hweight{k}" for k in range(6)} <= names
    assert {f"htree{k}" for k in range(6)} <= names


def test_paper_bitwidth_range(btpc_program):
    widths = [group.bitwidth for group in btpc_program.groups]
    assert min(widths) == 2  # ridge (paper §4.1)
    assert max(widths) == 20  # the coder weights


def test_pyr_ridge_coindexed(btpc_program):
    pyr = btpc_program.group("pyr")
    ridge = btpc_program.group("ridge")
    assert pyr.words == ridge.words == upper_pyramid_words(1024)


def test_image_is_a_megaword(btpc_program):
    assert btpc_program.group("image").words == 1 << 20


def test_manifest_counts(btpc_program):
    counts = btpc_program.access_counts()
    # Input load writes every pixel once.
    assert counts["image"].writes >= 1 << 20
    # Level-0 stencil: ~2.75 image reads per pixel.
    per_pixel = counts["image"].reads / (1 << 20)
    assert 2.0 < per_pixel < 4.0


def test_data_dependent_counts_scale_with_profile(btpc_profile, btpc_program):
    counts = btpc_program.access_counts()
    total_hweight = sum(
        counts[f"hweight{k}"].total for k in range(6)
    )
    # Per-detail hweight rate carried over from the profile.
    profile_rate = sum(
        btpc_profile.phases["encode_l0"].total(f"hweight{k}")
        + btpc_profile.phases["encode_l0"].total(f"hweight_scan{k}")
        for k in range(6)
    ) / btpc_profile.detail_pixels("encode_l0")
    spec_rate = total_hweight / (0.75 * (1 << 20) + upper_detail_count(1024))
    assert spec_rate == pytest.approx(profile_rate, rel=0.5)


def test_spec_passes_semantic_validation(btpc_program):
    errors = [i for i in validate_program(btpc_program) if i.severity == "error"]
    assert errors == []


def test_profile_shares_sum_to_one(btpc_profile):
    for phase in ("encode_l0", "encode_up"):
        shares = [btpc_profile.coder_share(phase, k) for k in range(6)]
        assert sum(shares) == pytest.approx(1.0)


def test_pooled_per_use_positive(btpc_profile):
    reads, writes = btpc_profile.pooled_per_use("encode_up", "hweight")
    assert reads > 0 and writes > 0
    scan_reads, _ = btpc_profile.pooled_per_use("encode_up", "hweight_scan")
    assert scan_reads > 0

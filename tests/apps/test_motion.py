"""The motion estimation workload."""

import pytest

from repro.apps.motion import MotionConstraints, build_motion_program
from repro.dtse import analyze_macp, run_pmm
from repro.memlib import MemoryLibrary


def test_spec_builds_and_validates():
    program = build_motion_program()
    assert set(program.group_names) == {"current", "reference", "vectors", "sad"}
    counts = program.access_counts()
    assert counts["reference"].reads == counts["current"].reads
    # SAD accumulation is foreground: heavy writes, but see below.
    assert counts["sad"].writes > 0


def test_constraints_scale():
    constraints = MotionConstraints()
    assert constraints.blocks == 396
    assert constraints.candidates == 81
    assert constraints.cycle_budget == int(60e6 / 12.5)


def test_constraints_reject_non_divisible_frame():
    """A frame that does not tile into blocks must fail loudly.

    Before the check, 180x144 with 8-pel blocks silently dropped half
    a block column from the block count (and thus from every access
    count downstream).
    """
    with pytest.raises(ValueError, match="divisible"):
        MotionConstraints(frame_width=180)
    with pytest.raises(ValueError, match="divisible"):
        MotionConstraints(frame_height=100)
    with pytest.raises(ValueError, match="block_size"):
        MotionConstraints(block_size=0)
    # CIF at 16-pel blocks tiles exactly: accepted.
    constraints = MotionConstraints(
        frame_width=352, frame_height=288, block_size=16
    )
    assert constraints.blocks == (352 // 16) * (288 // 16)


def test_macp_feasible():
    constraints = MotionConstraints()
    program = build_motion_program(constraints)
    report = analyze_macp(program, constraints.cycle_budget)
    assert report.feasible


def test_pipeline_runs_both_policies():
    constraints = MotionConstraints()
    program = build_motion_program(constraints)
    onchip = run_pmm(
        program, constraints.cycle_budget, constraints.frame_time_s,
        library=MemoryLibrary(offchip_word_threshold=65536),
        label="frames on-chip",
    ).report
    offchip = run_pmm(
        program, constraints.cycle_budget, constraints.frame_time_s,
        library=MemoryLibrary(offchip_word_threshold=16384),
        label="frames off-chip",
    ).report
    # Frames on-chip: huge macros; frames off-chip: tiny die, DRAM power.
    assert onchip.onchip_area_mm2 > 10 * offchip.onchip_area_mm2
    assert offchip.offchip_power_mw > 0
    assert onchip.offchip_power_mw == 0

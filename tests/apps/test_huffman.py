"""FGK adaptive Huffman coder: round-trips and the sibling property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.btpc.bitio import BitReader, BitWriter
from repro.apps.btpc.huffman import AdaptiveHuffman


def _roundtrip(symbols, alphabet):
    writer = BitWriter()
    encoder = AdaptiveHuffman(alphabet)
    for symbol in symbols:
        encoder.encode(symbol, writer)
    decoder = AdaptiveHuffman(alphabet)
    reader = BitReader(writer.getvalue())
    return [decoder.decode(reader) for _ in symbols]


@given(st.lists(st.integers(0, 15), max_size=300))
@settings(deadline=None)
def test_roundtrip_small_alphabet(symbols):
    assert _roundtrip(symbols, 16) == symbols


@given(st.lists(st.integers(0, 511), max_size=150))
@settings(deadline=None)
def test_roundtrip_codec_alphabet(symbols):
    assert _roundtrip(symbols, 512) == symbols


@given(st.lists(st.integers(0, 7), min_size=1, max_size=400))
@settings(deadline=None)
def test_sibling_property_always_holds(symbols):
    writer = BitWriter()
    coder = AdaptiveHuffman(8)
    for symbol in symbols:
        coder.encode(symbol, writer)
        coder.check_sibling_property()


def test_skewed_source_compresses():
    symbols = [0] * 2000 + [1] * 40 + [2] * 4
    writer = BitWriter()
    coder = AdaptiveHuffman(256)
    for symbol in symbols:
        coder.encode(symbol, writer)
    assert writer.bits_written / len(symbols) < 2.0


def test_rejects_out_of_alphabet():
    coder = AdaptiveHuffman(8)
    with pytest.raises(ValueError):
        coder.encode(8, BitWriter())
    with pytest.raises(ValueError):
        AdaptiveHuffman(1)


def test_access_hook_sees_traffic():
    tallies = {}

    def hook(kind, array, count):
        tallies[(kind, array)] = tallies.get((kind, array), 0) + count

    coder = AdaptiveHuffman(16, access_hook=hook)
    writer = BitWriter()
    for symbol in [3, 3, 5, 3, 7, 5]:
        coder.encode(symbol, writer)
    assert tallies[("read", "hleaf")] == 6
    assert ("write", "hweight") in tallies
    assert ("read", "hweight_scan") in tallies


def test_bitio_roundtrip():
    writer = BitWriter()
    writer.write_bits(0b1011, 4)
    writer.write_bits(0xABC, 12)
    reader = BitReader(writer.getvalue())
    assert reader.read_bits(4) == 0b1011
    assert reader.read_bits(12) == 0xABC
    with pytest.raises(EOFError):
        BitReader(b"").read_bit()

"""The BTPC codec: round-trips, error bounds, profiling structure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.btpc import BtpcDecoder, BtpcEncoder, CodecConfig, images
from repro.apps.btpc.pyramid import (
    detail_count,
    detail_positions,
    neighbour_offsets,
    num_levels,
)
from repro.profiling import AccessCounter


@pytest.mark.parametrize(
    "make",
    [images.gradient, images.edges, lambda n: images.texture(n, 3),
     lambda n: images.natural_like(n, 5), lambda n: images.checkerboard(n)],
)
def test_lossless_roundtrip(make):
    image = make(32).astype(np.int32)
    result = BtpcEncoder(CodecConfig()).encode(image)
    decoded = BtpcDecoder(CodecConfig()).decode(result.payload, 32)
    assert np.array_equal(decoded, image)


@pytest.mark.parametrize("step", [2, 4, 8, 16])
def test_lossy_error_bound(step):
    image = images.natural_like(64, 11).astype(np.int32)
    config = CodecConfig(quantizer_step=step)
    result = BtpcEncoder(config).encode(image)
    decoded = BtpcDecoder(config).decode(result.payload, 64)
    assert np.abs(decoded - image).max() <= step // 2 + 1


def test_lossy_rate_decreases_with_step():
    image = images.natural_like(64, 12).astype(np.int32)
    bits = [
        BtpcEncoder(CodecConfig(quantizer_step=step)).encode(image).bits
        for step in (1, 4, 16)
    ]
    assert bits[0] > bits[1] > bits[2]


@given(st.integers(0, 2**32 - 1))
@settings(deadline=None, max_examples=10)
def test_roundtrip_random_images(seed):
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 256, size=(16, 16), dtype=np.int32)
    result = BtpcEncoder(CodecConfig()).encode(image)
    decoded = BtpcDecoder(CodecConfig()).decode(result.payload, 16)
    assert np.array_equal(decoded, image)


def test_rejects_non_square():
    with pytest.raises(ValueError):
        BtpcEncoder(CodecConfig()).encode(np.zeros((16, 32), dtype=np.int32))


def test_profiled_run_matches_plain_run():
    image = images.edges(32).astype(np.int32)
    plain = BtpcEncoder(CodecConfig(quantizer_step=4)).encode(image)
    counter = AccessCounter()
    profiled = BtpcEncoder(CodecConfig(quantizer_step=4), counter=counter).encode(image)
    assert profiled.payload == plain.payload
    assert counter.grand_total() > 0


def test_phase_profiles_cover_known_phases():
    counter = AccessCounter()
    encoder = BtpcEncoder(CodecConfig(quantizer_step=4), counter=counter)
    result = encoder.encode(images.natural_like(32, 2).astype(np.int32))
    assert set(result.phase_profiles) == {
        "load", "build", "base", "encode_up", "encode_l0",
    }
    load = result.phase_profiles["load"]
    assert load.write_count("image") == 32 * 32
    assert sum(result.coder_symbols["encode_l0"]) == detail_count((32, 32))


# ----------------------------------------------------------------------
# Pyramid geometry
# ----------------------------------------------------------------------
def test_num_levels():
    assert num_levels(1024, 8) == 8
    assert num_levels(32, 8) == 3
    with pytest.raises(ValueError):
        num_levels(4, 8)


def test_detail_positions_cover_three_quarters():
    positions = list(detail_positions((16, 16)))
    assert len(positions) == detail_count((16, 16)) == 192
    assert all((y % 2, x % 2) != (0, 0) for y, x, _ in positions)


def test_neighbour_offsets_are_coarse():
    for pixel_type in (0, 1, 2):
        for dy, dx in neighbour_offsets(pixel_type):
            # Offsets from an odd-parity position land on even-even.
            assert (dy % 2, dx % 2) != (0, 0)
    with pytest.raises(ValueError):
        neighbour_offsets(3)

"""The 2-D wavelet workload."""

import pytest

from repro.apps.wavelet import WaveletConstraints, build_wavelet_program
from repro.dtse import analyze_macp, run_pmm


@pytest.fixture(scope="module")
def constraints():
    return WaveletConstraints()


def test_spec_builds_with_all_levels(constraints):
    program = build_wavelet_program(constraints)
    names = {nest.name for nest in program.nests}
    for level in range(constraints.levels):
        assert f"row_l{level}" in names
        assert f"col_l{level}" in names
    counts = program.access_counts()
    # Each level halves the transformed extent in both dimensions: the
    # temporary is written once per pixel of every level's corner.
    per_level = sum(4.0 ** -level for level in range(constraints.levels))
    assert counts["rowtmp"].writes == pytest.approx(
        constraints.pixels * per_level
    )
    assert counts["coeffs"].writes == pytest.approx(
        constraints.pixels * per_level
    )


def test_constraints_validate_dyadic_tiling():
    with pytest.raises(ValueError, match="divisible"):
        WaveletConstraints(image_size=500, levels=3)
    with pytest.raises(ValueError, match="levels"):
        WaveletConstraints(levels=0)
    WaveletConstraints(image_size=512, levels=3)  # does not raise


def test_macp_feasible(constraints):
    program = build_wavelet_program(constraints)
    assert analyze_macp(program, constraints.cycle_budget).feasible


def test_column_major_pays_the_page_penalty(constraints):
    """The row-ordered rewrite beats the classic column walk on power.

    Identical work, identical arrays — only the iteration order of the
    column pass differs.  The page-mode cost model must make that
    difference visible; this is the accurate-feedback argument on the
    locality axis.
    """
    column_major = run_pmm(
        build_wavelet_program(constraints, column_major=True),
        constraints.cycle_budget, constraints.frame_time_s,
        label="column-major",
    ).report
    row_ordered = run_pmm(
        build_wavelet_program(constraints, column_major=False),
        constraints.cycle_budget, constraints.frame_time_s,
        label="row-ordered",
    ).report
    assert row_ordered.offchip_power_mw < column_major.offchip_power_mw
    assert row_ordered.total_power_mw < column_major.total_power_mw


def test_both_orders_do_the_same_work(constraints):
    classic = build_wavelet_program(constraints, column_major=True)
    rewritten = build_wavelet_program(constraints, column_major=False)
    classic_counts = classic.access_counts()
    rewritten_counts = rewritten.access_counts()
    for group in ("image", "rowtmp", "coeffs"):
        assert classic_counts[group].total == rewritten_counts[group].total

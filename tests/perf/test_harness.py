"""The timing harness: registry, calibrated repeats, aggregation."""

import pytest

from repro.perf import (
    CaseRun,
    PerfCase,
    get_case,
    list_cases,
    perf_case,
    register_case,
    run_case,
    run_cases,
)
from repro.perf.harness import _CASES


@pytest.fixture
def scratch_registry(monkeypatch):
    """An empty case registry for the duration of one test."""
    monkeypatch.setattr("repro.perf.harness._CASES", {})
    return None


def _counting_case(name="counting", tags=("test",), evals=5):
    calls = {"setup": 0, "run": 0, "teardown": 0}

    def setup():
        calls["setup"] += 1
        return {"token": calls["setup"]}

    def run(state):
        assert state["token"] == calls["setup"]
        calls["run"] += 1
        return CaseRun(evals=evals, points=evals, cache={"misses": 0})

    def teardown(state):
        assert state is not None
        calls["teardown"] += 1

    case = PerfCase(name=name, run=run, setup=setup, teardown=teardown, tags=tags)
    return case, calls


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_register_and_lookup(scratch_registry):
    case, _ = _counting_case()
    register_case(case)
    assert get_case("counting") is case
    assert list_cases() == ("counting",)
    assert list_cases("test") == ("counting",)
    assert list_cases("other") == ()


def test_duplicate_registration_raises(scratch_registry):
    case, _ = _counting_case()
    register_case(case)
    with pytest.raises(ValueError):
        register_case(case)
    register_case(case, replace=True)  # explicit replace is fine


def test_unknown_case_raises(scratch_registry):
    with pytest.raises(KeyError):
        get_case("ghost")


def test_perf_case_decorator_registers(scratch_registry):
    @perf_case("decorated", tags=("test",))
    def body(_state):
        """Docstring becomes the description."""
        return CaseRun(evals=1)

    case = get_case("decorated")
    assert case.description == "Docstring becomes the description."
    assert case.tags == ("test",)


def test_builtin_suite_is_registered():
    names = list_cases()
    assert "sweep_cold_cavity" in names
    assert "registry_sweep_warm_disk" in names
    quick = list_cases("quick")
    assert quick and set(quick) <= set(names)
    assert "oracle_single_btpc" not in quick


# ----------------------------------------------------------------------
# Timing / calibration
# ----------------------------------------------------------------------
def test_fast_case_is_repeated_to_fill_the_window(scratch_registry):
    case, calls = _counting_case()
    result = run_case(case, min_seconds=0.02, max_repeats=50)
    assert result.repeats > 1
    assert calls["run"] == result.repeats
    assert calls["setup"] == calls["teardown"] == result.repeats
    assert result.evals == 5
    assert result.points == 5
    assert result.wall_seconds > 0
    assert result.best_seconds <= result.mean_seconds
    assert result.evals_per_sec == pytest.approx(
        5 * result.repeats / result.wall_seconds
    )


def test_slow_case_runs_once(scratch_registry):
    def run(_state):
        import time

        time.sleep(0.03)
        return CaseRun(evals=1)

    result = run_case(PerfCase(name="slow", run=run), min_seconds=0.01)
    assert result.repeats == 1


def test_repeats_are_capped(scratch_registry):
    case, calls = _counting_case()
    result = run_case(case, min_seconds=10.0, max_repeats=3)
    assert result.repeats == 3
    assert calls["run"] == 3


def test_teardown_runs_even_when_case_fails(scratch_registry):
    calls = {"teardown": 0}

    def run(_state):
        raise RuntimeError("boom")

    def teardown(_state):
        calls["teardown"] += 1

    case = PerfCase(name="failing", run=run, teardown=teardown)
    with pytest.raises(RuntimeError):
        run_case(case)
    assert calls["teardown"] == 1


def test_non_caserun_return_is_rejected(scratch_registry):
    case = PerfCase(name="bad", run=lambda _state: {"evals": 1})
    with pytest.raises(TypeError):
        run_case(case)


def test_invalid_knobs_are_rejected(scratch_registry):
    case, _ = _counting_case()
    with pytest.raises(ValueError):
        run_case(case, max_repeats=0)


# ----------------------------------------------------------------------
# run_cases -> BenchReport
# ----------------------------------------------------------------------
def test_run_cases_by_name_preserves_order(scratch_registry):
    first, _ = _counting_case("zz_first")
    second, _ = _counting_case("aa_second")
    register_case(first)
    register_case(second)
    report = run_cases(
        ["zz_first", "aa_second"], label="ordered", min_seconds=0.0, max_repeats=1
    )
    assert report.case_names() == ("zz_first", "aa_second")
    assert report.label == "ordered"


def test_run_cases_by_tag_sorts_names(scratch_registry):
    for name in ("bbb", "aaa", "ccc"):
        case, _ = _counting_case(name)
        register_case(case)
    report = run_cases(tag="test", label="t", min_seconds=0.0, max_repeats=1)
    assert report.case_names() == ("aaa", "bbb", "ccc")


def test_run_cases_empty_selection_raises(scratch_registry):
    with pytest.raises(ValueError):
        run_cases(tag="nonexistent")


def test_run_cases_rejects_names_plus_tag(scratch_registry):
    case, _ = _counting_case()
    register_case(case)
    with pytest.raises(ValueError):
        run_cases(["counting"], tag="test")


def test_run_cases_reports_progress(scratch_registry):
    case, _ = _counting_case()
    register_case(case)
    seen = []
    run_cases(label="p", min_seconds=0.0, max_repeats=1, progress=seen.append)
    assert seen == ["counting"]


def test_scratch_registry_does_not_leak():
    """The real registry is intact after monkeypatched tests."""
    assert "sweep_cold_cavity" in _CASES or "sweep_cold_cavity" in list_cases()

"""The ``python -m repro.perf`` CLI: run, compare, list, exit codes."""

import json
from pathlib import Path

import pytest

from repro.perf import BenchReport, CaseResult, CaseRun, PerfCase, register_case
from repro.perf.__main__ import main


@pytest.fixture
def synthetic_case(monkeypatch):
    """A registered trivial case the CLI can run instantly."""
    monkeypatch.setattr("repro.perf.harness._CASES", {})
    register_case(
        PerfCase(
            name="synthetic",
            run=lambda _state: CaseRun(evals=2, points=2, cache={"misses": 2}),
            tags=("test",),
            description="synthetic CLI fixture case",
        )
    )
    return "synthetic"


def _write_report(path, label, evals_per_sec):
    report = BenchReport(
        label=label,
        cases=[CaseResult(name="synthetic", evals=2, evals_per_sec=evals_per_sec)],
    )
    report.to_json(path)
    return path


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------
def _run_args(tmp_path, *extra):
    args = ["run", "--out", str(tmp_path), "--min-seconds", "0.0"]
    args += ["--max-repeats", "1"]
    args += list(extra)
    return args


def test_run_emits_bench_json(tmp_path, capsys, synthetic_case):
    code = main(
        _run_args(tmp_path, "--label", "clitest", "--cases", "synthetic")
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "timing synthetic" in out
    assert "BENCH_clitest.json" in out
    payload = json.loads((tmp_path / "BENCH_clitest.json").read_text())
    assert payload["label"] == "clitest"
    assert payload["cases"][0]["name"] == "synthetic"
    assert payload["cases"][0]["evals_per_sec"] > 0


def test_run_by_tag(tmp_path, synthetic_case):
    code = main(_run_args(tmp_path, "--label", "t", "--tag", "test"))
    assert code == 0
    assert (tmp_path / "BENCH_t.json").exists()


def test_run_rejects_cases_plus_tag(tmp_path, synthetic_case):
    with pytest.raises(SystemExit):
        main(_run_args(tmp_path, "--cases", "synthetic", "--tag", "test"))


# ----------------------------------------------------------------------
# compare
# ----------------------------------------------------------------------
def test_compare_ok_exits_zero(tmp_path, capsys):
    current = _write_report(tmp_path / "current.json", "now", 95.0)
    baseline = _write_report(tmp_path / "base.json", "base", 100.0)
    code = main(["compare", str(current), str(baseline), "--threshold", "2.0"])
    assert code == 0
    assert "no regressions" in capsys.readouterr().out


def test_compare_regression_exits_nonzero(tmp_path, capsys):
    current = _write_report(tmp_path / "current.json", "now", 10.0)
    baseline = _write_report(tmp_path / "base.json", "base", 100.0)
    code = main(["compare", str(current), str(baseline), "--threshold", "2.0"])
    assert code == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_compare_threshold_is_respected(tmp_path):
    current = _write_report(tmp_path / "current.json", "now", 10.0)
    baseline = _write_report(tmp_path / "base.json", "base", 100.0)
    assert main(["compare", str(current), str(baseline), "--threshold", "20"]) == 0


def test_compare_missing_baseline_case_exits_nonzero(tmp_path, capsys):
    """A case dropped from the run must fail loudly, not pass silently."""
    baseline = BenchReport(
        label="base",
        cases=[
            CaseResult(name="synthetic", evals=2, evals_per_sec=100.0),
            CaseResult(name="dropped", evals=2, evals_per_sec=50.0),
        ],
    )
    baseline_path = tmp_path / "base.json"
    baseline.to_json(baseline_path)
    current = _write_report(tmp_path / "current.json", "now", 95.0)
    code = main(["compare", str(current), str(baseline_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "missing from the current run" in out
    assert "dropped" in out


def test_compare_tag_narrows_to_subset(tmp_path):
    """--tag quick gates the quick subset against a full baseline."""
    baseline = BenchReport(
        label="base",
        cases=[
            CaseResult(name="synthetic", tags=("quick",), evals_per_sec=100.0),
            CaseResult(name="slow_only", tags=("full",), evals_per_sec=1.0),
        ],
    )
    baseline_path = tmp_path / "base.json"
    baseline.to_json(baseline_path)
    current = BenchReport(
        label="now",
        cases=[CaseResult(name="synthetic", tags=("quick",), evals_per_sec=95.0)],
    )
    current_path = tmp_path / "current.json"
    current.to_json(current_path)
    assert main(["compare", str(current_path), str(baseline_path)]) == 1
    assert (
        main(["compare", str(current_path), str(baseline_path), "--tag", "quick"])
        == 0
    )


def test_compare_writes_markdown_summary(tmp_path):
    current = _write_report(tmp_path / "current.json", "now", 95.0)
    baseline = _write_report(tmp_path / "base.json", "base", 100.0)
    summary = tmp_path / "summary.md"
    summary.write_text("# Existing content\n", encoding="utf-8")
    code = main(
        ["compare", str(current), str(baseline), "--summary", str(summary)]
    )
    assert code == 0
    text = summary.read_text(encoding="utf-8")
    # Appended, not overwritten (GITHUB_STEP_SUMMARY semantics).
    assert text.startswith("# Existing content")
    assert "Perf regression gate" in text
    assert "| synthetic |" in text


def test_compare_against_committed_baseline_schema(tmp_path):
    """The committed baseline parses and compares cleanly."""
    repo_root = Path(__file__).resolve().parents[2]
    baseline_path = str(repo_root / "benchmarks" / "baselines" / "perf_baseline.json")
    baseline = BenchReport.from_json(baseline_path)
    assert baseline.case_names()
    current = tmp_path / "current.json"
    baseline.to_json(current)  # identical numbers: never a regression
    assert main(["compare", str(current), baseline_path, "--threshold", "2.0"]) == 0


# ----------------------------------------------------------------------
# list
# ----------------------------------------------------------------------
def test_list_shows_cases(capsys, synthetic_case):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "synthetic" in out
    assert "synthetic CLI fixture case" in out


def test_list_unknown_tag_fails(capsys, synthetic_case):
    assert main(["list", "--tag", "ghost"]) == 1

"""BENCH_*.json schema stability, round-trips and the comparator."""

import json

import pytest

from repro.perf import (
    BenchReport,
    CaseResult,
    compare_reports,
)

CASE_KEY_ORDER = [
    "name",
    "tags",
    "repeats",
    "points",
    "evals",
    "wall_seconds",
    "best_seconds",
    "mean_seconds",
    "evals_per_sec",
    "cache",
    "notes",
]
REPORT_KEY_ORDER = ["schema_version", "label", "environment", "cases"]


def _case(name, evals_per_sec, **overrides):
    fields = dict(
        name=name,
        tags=("quick",),
        repeats=3,
        points=4,
        evals=4,
        wall_seconds=0.5,
        best_seconds=0.15,
        mean_seconds=0.1667,
        evals_per_sec=evals_per_sec,
        cache={"hits": 0, "misses": 4, "hit_rate": 0.0},
    )
    fields.update(overrides)
    return CaseResult(**fields)


def _report(label="test", cases=()):
    return BenchReport(label=label, cases=list(cases))


# ----------------------------------------------------------------------
# Schema / ordering determinism
# ----------------------------------------------------------------------
def test_bench_json_field_ordering_is_deterministic():
    report = _report(cases=[_case("a", 10.0), _case("b", 20.0)])
    text = report.to_json()
    parsed = json.loads(text)
    assert list(parsed) == REPORT_KEY_ORDER
    for case in parsed["cases"]:
        assert list(case) == CASE_KEY_ORDER
    # Serializing twice yields byte-identical output.
    assert report.to_json() == text


def test_bench_json_round_trip(tmp_path):
    report = _report(cases=[_case("a", 10.0)])
    path = tmp_path / report.filename()
    report.to_json(path)
    loaded = BenchReport.from_json(path)
    assert loaded.to_dict() == report.to_dict()
    from_text = BenchReport.from_json(report.to_json())
    assert from_text.to_dict() == report.to_dict()


def test_bench_write_names_file_after_label(tmp_path):
    report = _report(label="ci")
    path = report.write(tmp_path)
    assert path.name == "BENCH_ci.json"
    assert path.exists()


def test_case_lookup_raises_for_unknown():
    report = _report(cases=[_case("a", 10.0)])
    assert report.case("a").evals_per_sec == 10.0
    with pytest.raises(KeyError):
        report.case("nope")


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def test_compare_flags_regressions_beyond_threshold():
    baseline = _report("base", [_case("a", 100.0), _case("b", 100.0)])
    current = _report("now", [_case("a", 45.0), _case("b", 95.0)])
    outcome = compare_reports(current, baseline, threshold=2.0)
    assert not outcome.ok
    assert [entry.name for entry in outcome.regressions] == ["a"]
    by_name = {entry.name: entry for entry in outcome.comparisons}
    assert by_name["a"].slowdown == pytest.approx(100.0 / 45.0)
    assert not by_name["b"].regressed


def test_compare_accepts_speedups_and_equal():
    baseline = _report("base", [_case("a", 100.0)])
    current = _report("now", [_case("a", 300.0)])
    outcome = compare_reports(current, baseline, threshold=2.0)
    assert outcome.ok
    assert outcome.comparisons[0].slowdown == pytest.approx(1.0 / 3.0)


def test_compare_skips_cases_missing_from_baseline():
    """A brand-new case has nothing to regress from: reported, not failed."""
    baseline = _report("base", [_case("a", 100.0)])
    current = _report("now", [_case("a", 90.0), _case("only_current", 5.0)])
    outcome = compare_reports(current, baseline, threshold=2.0)
    assert outcome.ok
    assert outcome.missing_in_baseline == ["only_current"]
    assert [entry.name for entry in outcome.comparisons] == ["a"]


def test_compare_fails_on_baseline_case_missing_from_current():
    """A dropped case is an ungated hot path, not a silent pass."""
    baseline = _report("base", [_case("a", 100.0), _case("only_base", 5.0)])
    current = _report("now", [_case("a", 90.0)])
    outcome = compare_reports(current, baseline, threshold=2.0)
    assert not outcome.ok
    assert outcome.missing_in_current == ["only_base"]
    assert "missing from the current run" in outcome.describe()
    assert "only_base" in outcome.describe()


def test_compare_tag_narrows_both_reports():
    """--tag compares a subset run strictly against a full baseline."""
    baseline = _report(
        "base",
        [
            _case("a", 100.0, tags=("quick",)),
            _case("slow", 5.0, tags=("full",)),
        ],
    )
    current = _report("now", [_case("a", 90.0, tags=("quick",))])
    # Untagged: the full-only case is missing and fails the comparison.
    assert not compare_reports(current, baseline, threshold=2.0).ok
    # Tag-narrowed: only the quick subset is gated, and strictly so.
    narrowed = compare_reports(current, baseline, threshold=2.0, tag="quick")
    assert narrowed.ok
    assert [entry.name for entry in narrowed.comparisons] == ["a"]
    empty = _report("now", [])
    assert not compare_reports(empty, baseline, threshold=2.0, tag="quick").ok


def test_comparison_markdown_summary():
    baseline = _report("base", [_case("a", 100.0), _case("gone", 5.0)])
    current = _report("now", [_case("a", 10.0)])
    text = compare_reports(current, baseline, threshold=2.0).to_markdown()
    assert "| case |" in text
    assert "**REGRESSED**" in text
    assert "gone" in text and "**MISSING**" in text
    assert text.endswith("\n")


def test_compare_zero_throughput_edges():
    baseline = _report("base", [_case("a", 0.0), _case("b", 10.0)])
    current = _report("now", [_case("a", 5.0), _case("b", 0.0)])
    outcome = compare_reports(current, baseline, threshold=2.0)
    by_name = {entry.name: entry for entry in outcome.comparisons}
    assert not by_name["a"].regressed  # no baseline: nothing to regress
    assert by_name["b"].regressed  # collapsed to zero: always regressed


def test_compare_with_no_shared_cases_is_not_ok():
    baseline = _report("base", [_case("old_name", 10.0)])
    current = _report("now", [_case("new_name", 10.0)])
    outcome = compare_reports(current, baseline, threshold=2.0)
    assert not outcome.ok
    assert "no shared cases" in outcome.describe()


def test_compare_rejects_bad_threshold():
    with pytest.raises(ValueError):
        compare_reports(_report(), _report(), threshold=0.0)


def test_comparison_describe_mentions_verdicts():
    baseline = _report("base", [_case("a", 100.0)])
    current = _report("now", [_case("a", 10.0)])
    outcome = compare_reports(current, baseline, threshold=2.0)
    text = outcome.describe()
    assert "REGRESSED" in text
    assert "1 case(s) regressed" in text

"""The built-in perf cases against the real oracle (fast apps only)."""

import pytest

from repro.perf import FAST_APPS, get_case, list_cases, run_case


def test_fast_apps_are_registered_workloads():
    from repro.api import list_apps

    assert set(FAST_APPS) <= set(list_apps())


def test_every_fast_app_has_the_case_family():
    names = set(list_cases())
    for app in FAST_APPS:
        assert f"oracle_single_{app}" in names
        assert f"sweep_cold_{app}" in names
        assert f"resweep_memoized_{app}" in names


def test_oracle_single_case_counts_one_eval():
    result = run_case(
        get_case("oracle_single_motion"), min_seconds=0.0, max_repeats=1
    )
    assert result.evals == 1
    assert result.points == 1
    assert result.evals_per_sec > 0


def test_sweep_cold_case_reports_cold_cache():
    result = run_case(get_case("sweep_cold_motion"), min_seconds=0.0, max_repeats=1)
    assert result.evals == result.cache["misses"] > 0
    assert result.cache["hits"] == 0
    assert result.points >= result.evals


def test_resweep_memoized_case_is_all_hits():
    result = run_case(
        get_case("resweep_memoized_motion"), min_seconds=0.0, max_repeats=1
    )
    assert result.evals > 0
    assert result.cache["misses"] == 0
    assert result.cache["hit_rate"] == pytest.approx(1.0)


def test_warm_pool_case_measures_fresh_points_only():
    """The warm-pool case times oracle misses, not pool spin-up."""
    result = run_case(
        get_case("sweep_parallel_warm_pool_cavity"), min_seconds=0.0, max_repeats=1
    )
    assert result.evals > 0
    # Every timed evaluation was fresh work through the warm pool: the
    # two setup points were excluded and their counters reset.
    assert result.cache["hits"] == 0
    assert result.evals == result.cache["misses"]
    assert result.evals_per_sec > 0


def test_registry_warm_disk_resweep_never_reruns_the_oracle():
    """Acceptance: a warm DiskCache re-sweep does zero oracle re-evals."""
    result = run_case(
        get_case("registry_sweep_warm_disk"), min_seconds=0.0, max_repeats=1
    )
    assert result.evals > 0
    assert result.cache["misses"] == 0
    assert result.cache["backend"] == "DiskCache"
    # The on-disk store held every report the re-sweep needed.
    backend_stats = result.cache["backend_stats"]
    assert backend_stats["corrupt"] == 0


def test_registry_warm_decoded_resweep_stays_in_the_decoded_tier():
    """The decoded-tier case: every probe resolves to a live report."""
    result = run_case(
        get_case("registry_resweep_warm_decoded"), min_seconds=0.0, max_repeats=1
    )
    assert result.evals > 0
    assert result.cache["misses"] == 0
    # All warm probes were absorbed by the decoded tier.
    assert result.cache["decoded_hits"] >= result.cache["hits"] > 0
    assert "quick" in result.tags and "decoded" in result.tags

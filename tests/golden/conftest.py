"""The golden-file regression harness.

``tests/golden/*.json`` are canonical snapshots of the paper-table
metrics every registered workload produces — structuring / hierarchy /
allocation costs, Pareto fronts, designer decisions.  They pin the
numbers down while the codebase keeps getting refactored: any change to
the oracle, the transforms or the specs that moves a cost shows up as a
named, line-level diff in this suite rather than as silent drift.

Workflow::

    pytest tests/golden                  # diff live results vs snapshots
    pytest tests/golden --update-golden  # regenerate the snapshots

``--update-golden`` rewrites the JSON files from the live run (and the
test passes); commit the resulting diff *only* when the change is
intentional, with the reason in the commit message.  Floats are
compared with a small relative tolerance (default 1e-9) so legitimate
cross-platform rounding noise does not fail the suite while any real
model change does.
"""

import json
import math
import pathlib

import pytest

GOLDEN_DIR = pathlib.Path(__file__).parent

#: Relative/absolute float tolerance: tight enough that any model change
#: trips it, loose enough for libm differences across platforms.
REL_TOL = 1e-9
ABS_TOL = 1e-9


def _diff(expected, actual, path, mismatches, rel_tol, abs_tol):
    """Recursively collect human-readable differences."""
    if len(mismatches) >= 20:  # enough to diagnose; keep failures short
        return
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            here = f"{path}.{key}"
            if key not in expected:
                mismatches.append(f"{here}: unexpected new key")
            elif key not in actual:
                mismatches.append(f"{here}: missing from live result")
            else:
                _diff(expected[key], actual[key], here, mismatches,
                      rel_tol, abs_tol)
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            mismatches.append(
                f"{path}: length {len(actual)} != golden {len(expected)}"
            )
            return
        for index, (exp, act) in enumerate(zip(expected, actual)):
            _diff(exp, act, f"{path}[{index}]", mismatches, rel_tol, abs_tol)
        return
    # bool is an int subclass: compare it exactly, not numerically.
    numeric = (
        isinstance(expected, (int, float)) and not isinstance(expected, bool)
        and isinstance(actual, (int, float)) and not isinstance(actual, bool)
    )
    if numeric:
        if not math.isclose(expected, actual, rel_tol=rel_tol, abs_tol=abs_tol):
            mismatches.append(f"{path}: {actual!r} != golden {expected!r}")
        return
    if expected != actual:
        mismatches.append(f"{path}: {actual!r} != golden {expected!r}")


@pytest.fixture
def golden(request):
    """Compare a JSON-serializable payload against its named snapshot.

    Usage: ``golden("wavelet", payload)`` checks (or, under
    ``--update-golden``, rewrites) ``tests/golden/wavelet.json``.
    """
    update = request.config.getoption("--update-golden")

    def check(name, payload, rel_tol=REL_TOL, abs_tol=ABS_TOL):
        path = GOLDEN_DIR / f"{name}.json"
        # Round-trip through JSON so the live payload is compared in
        # exactly the representation the snapshot stores.
        payload = json.loads(json.dumps(payload))
        if update:
            path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            return
        if not path.exists():
            pytest.fail(
                f"no golden snapshot {path.name}: run "
                "`pytest tests/golden --update-golden` and commit the "
                "result",
                pytrace=False,
            )
        expected = json.loads(path.read_text(encoding="utf-8"))
        mismatches = []
        _diff(expected, payload, "$", mismatches, rel_tol, abs_tol)
        if mismatches:
            details = "\n  ".join(mismatches)
            pytest.fail(
                f"live results drifted from {path.name}:\n  {details}\n"
                "(if the change is intentional, regenerate with "
                "--update-golden)",
                pytrace=False,
            )

    return check

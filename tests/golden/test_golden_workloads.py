"""Golden-file regression tests: every workload's paper-table metrics.

Each test reduces live exploration results to a JSON payload and diffs
it against the committed snapshot (see ``conftest.py`` for the
workflow and ``--update-golden``).  The BTPC snapshot additionally pins
the *rendered* Tables 1-4 line by line, so it is byte-compatible with
the paper-table artifacts the benchmarks regenerate.
"""

import pytest

from repro.explore.btpc_study import STEP_ORDER

REGISTRY_APPS = ("cavity", "motion", "wavelet")


def report_row(report):
    """The snapshot columns of one cost report."""
    return {
        "label": report.label,
        "onchip_area_mm2": report.onchip_area_mm2,
        "onchip_power_mw": report.onchip_power_mw,
        "offchip_power_mw": report.offchip_power_mw,
        "total_power_mw": report.total_power_mw,
        "onchip_memories": report.onchip_memory_count,
        "cycles_used": report.cycles_used,
        "cycle_budget": report.cycle_budget,
    }


def sweep_payload(result, explorer):
    """Snapshot of one default-space exhaustive sweep."""
    return {
        "space": result.space_name,
        "evaluations": [
            {"point": record.point.to_dict(), **report_row(record.report)}
            for record in result.records
        ],
        "skipped_infeasible": sorted(
            point.display_label for point, _ in explorer.failures
        ),
        "pareto_front": [record.label for record in result.pareto_front()],
        "knee_point": result.knee_point().label,
    }


@pytest.mark.parametrize("app", REGISTRY_APPS)
def test_default_space_sweep_matches_golden(app, registry_sweeps, golden):
    result, explorer = registry_sweeps[app]
    golden(app, sweep_payload(result, explorer))


def test_btpc_paper_tables_match_golden(study, golden):
    """Tables 1-4 and the decision chain, numeric and rendered.

    The ``rendered`` block stores the exact table text (the paper-table
    artifact): string comparison in the harness is byte-exact, so any
    formatting or cost drift in the canonical experiment fails here.
    """
    result = study.explore()
    payload = {
        "table1_structuring": [report_row(r) for r in study.table1()],
        "table2_hierarchy": [report_row(r) for r in study.table2()],
        "table3_cycle_budget": [
            {"extra_cycles": extra, **report_row(report)}
            for extra, report in study.table3()
        ],
        "table4_allocation": [
            {"n_onchip": count, **report_row(report)}
            for count, report in study.table4()
        ],
        "decisions": [
            {"step": step, "chosen": result.decisions[step]}
            for step in STEP_ORDER
        ],
        "pareto_front": [record.label for record in result.pareto_front()],
        "rendered": study.render_all().splitlines(),
    }
    golden("btpc_tables", payload)

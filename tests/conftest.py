"""Shared fixtures: profiles and studies are expensive, build them once."""

import pytest

from repro.apps.btpc import BtpcConstraints, build_btpc_program, profile_btpc
from repro.explore import BtpcStudy


@pytest.fixture(scope="session")
def btpc_profile():
    """A small-image profile (fast, deterministic)."""
    return profile_btpc(image_size=64, seed=7, quantizer_step=4)


@pytest.fixture(scope="session")
def btpc_program(btpc_profile):
    """The design-size BTPC specification."""
    return build_btpc_program(BtpcConstraints(), btpc_profile)


@pytest.fixture(scope="session")
def constraints():
    return BtpcConstraints()


@pytest.fixture(scope="session")
def study():
    """One full exploration shared by all shape tests.

    Uses the canonical 128x128 profile: the 64x64 one is fine for
    structural tests but its coder statistics are too noisy for the
    cost-shape checks.
    """
    return BtpcStudy()


@pytest.fixture(scope="session")
def registry_sweeps():
    """Default-space exhaustive sweeps of the fast registered workloads.

    One sweep per app, shared by the golden-file suite and the registry
    end-to-end tests (BTPC is excluded here: its sweep is the expensive
    study walk, covered by the ``study`` fixture).
    """
    from repro.api import ExhaustiveSweep, Explorer

    sweeps = {}
    for name in ("cavity", "motion", "wavelet"):
        explorer = Explorer.for_app(name, on_error="skip")
        sweeps[name] = (explorer.run(ExhaustiveSweep()), explorer)
    return sweeps
